#include "net/link.hpp"

#include <stdexcept>
#include <utility>

#include "check/check.hpp"

namespace pp::net {

Channel::Channel(sim::Simulator& sim, WiredParams params, PacketSink& sink)
    : sim_{sim}, params_{params}, sink_{sink} {}

sim::Duration Channel::tx_time(const Packet& pkt) const {
  const double bits =
      8.0 * static_cast<double>(pkt.wire_size() + params_.framing_bytes);
  return sim::Time::seconds(bits / params_.rate_bps);
}

bool Channel::transmit(Packet pkt) {
  if (down_) {
    ++packets_dropped_;
    return false;
  }
  if (backlog_bytes_ + pkt.wire_size() > params_.queue_limit_bytes) {
    ++packets_dropped_;
    return false;
  }
  const sim::Time start =
      busy_until_ > sim_.now() ? busy_until_ : sim_.now();
  const sim::Time done = start + tx_time(pkt);
  busy_until_ = done;
  backlog_bytes_ += pkt.wire_size();
  ++packets_sent_;
  const std::uint32_t wire = pkt.wire_size();
  sim_.at(done + params_.propagation,
          [this, wire, p = std::move(pkt)]() mutable {
            PP_CHECK_AT(backlog_bytes_ >= wire, "net.channel.backlog",
                        sim_.now());
            backlog_bytes_ -= wire;
            sink_.handle_packet(std::move(p));
          });
  return true;
}

bool Channel::transmit_burst(ChunkQueue burst) {
  if (burst.empty()) return true;
  const std::uint64_t n = burst.packets();
  if (down_) {
    packets_dropped_ += n;
    return false;  // chain releases its views on destruction
  }
  // One admission check and one reservation for the whole chain.  Wire
  // bytes (not payload): the channel models a link budget.
  std::uint64_t wire = 0;
  burst.for_each([&wire](const Chunk& c) { wire += chunk_wire_bytes(c); });
  if (backlog_bytes_ + wire > params_.queue_limit_bytes) {
    packets_dropped_ += n;
    return false;
  }
  const sim::Time start = busy_until_ > sim_.now() ? busy_until_ : sim_.now();
  const double bits = 8.0 * static_cast<double>(
                                wire + n * std::uint64_t{params_.framing_bytes});
  const sim::Time done = start + sim::Time::seconds(bits / params_.rate_bps);
  busy_until_ = done;
  backlog_bytes_ += wire;
  packets_sent_ += n;
  sim_.at(done + params_.propagation,
          [this, wire, b = std::move(burst)]() mutable {
            PP_CHECK_AT(backlog_bytes_ >= wire, "net.channel.backlog",
                        sim_.now());
            backlog_bytes_ -= wire;
            sink_.handle_burst(std::move(b));
          });
  return true;
}

EthernetLan::EthernetLan(sim::Simulator& sim, WiredParams params)
    : sim_{sim}, params_{params} {}

EthernetLan::PortId EthernetLan::do_attach(PacketSink& sink) {
  egress_.push_back(std::make_unique<Channel>(sim_, params_, sink));
  return egress_.size() - 1;
}

EthernetLan::PortId EthernetLan::attach(PacketSink& sink, Ipv4Addr ip) {
  const PortId port = do_attach(sink);
  by_ip_.emplace(ip, port);
  return port;
}

EthernetLan::PortId EthernetLan::attach_default(PacketSink& sink) {
  default_port_ = do_attach(sink);
  return default_port_;
}

bool EthernetLan::send(PortId from, Packet pkt) {
  auto it = by_ip_.find(pkt.dst);
  PortId to;
  if (it != by_ip_.end()) {
    to = it->second;
  } else if (default_port_ != static_cast<PortId>(-1)) {
    to = default_port_;
  } else {
    // pp-lint: allow(hot-path-alloc): error-path message; the throw aborts
    throw std::runtime_error("EthernetLan: no route for " + pkt.dst.str());
  }
  if (to == from) return false;  // would loop back; treat as misrouted
  ++packets_forwarded_;
  return egress_[to]->transmit(std::move(pkt));
}

}  // namespace pp::net

// Shared 11 Mbps wireless medium (802.11b-style, infrastructure mode).
//
// The channel is half-duplex: transmissions serialize in FIFO order of the
// requests (a simple CSMA abstraction).  Every packet pays a fixed MAC
// overhead time plus payload bits at the data rate; broadcasts go at the
// basic rate, as in 802.11.  Stations attached to the medium declare
// whether they are listening — a sleeping WNIC misses packets addressed to
// it, which is exactly the loss mode the paper's clients risk.
//
// Delivery rules (infrastructure mode): frames sent by the access point go
// to the addressed station (or all stations for broadcast); frames sent by
// any other station go to the access point, which forwards them upstream.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/addr.hpp"
#include "net/chunk.hpp"
#include "net/packet.hpp"
#include "obs/hooks.hpp"
#include "sim/simulator.hpp"

namespace pp::net {

// A device on the wireless medium (client WNIC or the access point's radio).
class WirelessStation {
 public:
  virtual ~WirelessStation() = default;

  // True when the radio can receive (high-power mode).
  virtual bool listening() const = 0;

  // Successful reception.  `airtime` is how long the frame occupied the
  // channel; implementations use it for receive-mode energy accounting.
  virtual void deliver(Packet pkt, sim::Duration airtime) = 0;

  // A frame addressed to this station ended while the radio was not
  // listening (or was corrupted).  Used for loss accounting and for the
  // naive-client baseline (which would have spent `airtime` receiving).
  virtual void missed(const Packet& pkt, sim::Duration airtime) {
    (void)pkt;
    (void)airtime;
  }

  // This station's own frame occupied the channel during [start, start+dur).
  // Used for transmit-mode energy accounting.
  virtual void on_air(sim::Time start, sim::Duration dur) {
    (void)start;
    (void)dur;
  }
};

// Pluggable frame-corruption model.  When installed via set_loss_model(),
// the medium consults it once per (frame, receiver) delivery attempt
// instead of drawing uniform p_loss from the shared simulator RNG; the
// model owns its own RNG stream.  `receiver` is the station's IP (the
// default 0.0.0.0 address for the access point's radio).
class ChannelLossModel {
 public:
  virtual ~ChannelLossModel() = default;
  virtual bool corrupted(const Packet& pkt, Ipv4Addr receiver,
                         sim::Time now) = 0;
};

struct WirelessParams {
  double rate_bps = 11e6;        // data rate
  double broadcast_rate_bps = 2e6;  // basic rate for broadcast frames
  // Fixed per-frame channel time: DIFS + average backoff + RTS/CTS + PLCP
  // preamble and header + MAC ACK exchange, plus the access point's share
  // of per-frame processing.  The default is calibrated so full-size
  // frames yield ~4.0 Mb/s of one-way goodput, matching the paper's
  // measured "effective bandwidth of 4 Mbps" on 11 Mbps hardware — which
  // makes ten 512 kbps streams (4.5 Mb/s) genuinely oversubscribe the
  // channel, as they did in the paper (Section 4.3).
  sim::Duration per_frame_overhead = sim::Time::us(1750);
  sim::Duration propagation = sim::Time::us(2);
  // Independent per-receiver corruption probability.
  double p_loss = 0.0;
  std::uint32_t mac_framing_bytes = 34;  // 802.11 MAC header + FCS
};

// Observes every frame on the air, regardless of addressee or corruption.
// `delivered` is false when the addressed receiver missed the frame (asleep
// or corrupted).  Airtime end == the time of the callback.
struct SnifferRecord {
  Packet pkt;
  sim::Time air_start;
  sim::Duration airtime;
  bool from_ap = false;
  bool delivered = false;
};
// pp-lint: allow(hot-path-alloc): sniffers are test/monitor-only instruments
using SnifferFn = std::function<void(const SnifferRecord&)>;

class WirelessMedium {
 public:
  using StationId = std::size_t;
  static constexpr StationId kNoStation = static_cast<StationId>(-1);

  WirelessMedium(sim::Simulator& sim, WirelessParams params = {});

  // Attach the access point's radio (exactly one per medium).
  StationId attach_access_point(WirelessStation& ap);
  // Attach a client station with its IP address.
  StationId attach_station(WirelessStation& st, Ipv4Addr ip);

  // Queue a frame for transmission.  The channel serializes requests.
  void transmit(StationId sender, Packet pkt);

  // Queue a whole burst chain as one medium reservation (access point
  // only, unicast to a single client): one airtime computation over the
  // chain and one finish event instead of N.  Per-frame semantics are
  // preserved — each frame still gets its own corruption draw, per-frame
  // receive airtime, miss accounting and sniffer record — but the frames
  // land back-to-back at the end of the reservation.
  void transmit_burst(StationId sender, ChunkQueue burst);

  void add_sniffer(SnifferFn fn) { sniffers_.push_back(std::move(fn)); }

  // True when the station owning `ip` currently has its radio listening.
  // Used by the access point to model the PS-Poll exchange: parked frames
  // are only released to stations that are awake to ask for them.
  bool station_listening(Ipv4Addr ip) const;

  // Time the channel becomes free (>= now when busy).
  sim::Time busy_until() const { return busy_until_; }
  sim::Duration airtime_of(const Packet& pkt) const;

  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_missed() const { return frames_missed_; }

  const WirelessParams& params() const { return params_; }

  // Publish per-frame counters and the airtime histogram to an observer.
  void set_obs(obs::Hook hook);

  // Install a corruption model that overrides uniform p_loss (nullptr
  // restores the built-in draw).  Not owned; must outlive the medium.
  void set_loss_model(ChannelLossModel* model) { loss_model_ = model; }

 private:
  struct Entry {
    WirelessStation* station;
    Ipv4Addr ip;
  };

  void finish_frame(StationId sender, Packet pkt, sim::Time air_start,
                    sim::Duration airtime);
  void finish_burst(ChunkQueue burst, sim::Time air_start);
  // Takes the packet by value: callers copy for all but the final delivery
  // of a frame and move for the last one, so a unicast frame's payload
  // shared_ptr is handed down the stack without refcount churn.
  void deliver_to(StationId receiver, Packet pkt, sim::Time air_start,
                  sim::Duration airtime, bool& any_delivered);

  sim::Simulator& sim_;
  WirelessParams params_;
  std::vector<Entry> stations_;
  StationId ap_ = kNoStation;
  sim::Time busy_until_ = sim::Time::zero();
  std::vector<SnifferFn> sniffers_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_missed_ = 0;
  ChannelLossModel* loss_model_ = nullptr;

  obs::Hook obs_;
  obs::Counter* ctr_frames_sent_ = nullptr;
  obs::Counter* ctr_frames_missed_ = nullptr;
  obs::Counter* ctr_bursts_ = nullptr;
  obs::Histogram* hist_airtime_us_ = nullptr;
  obs::Histogram* hist_burst_frames_ = nullptr;
};

}  // namespace pp::net

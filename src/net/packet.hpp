// The simulated packet.
//
// Packets are value types: copying is cheap (application payloads are held
// by shared_ptr, byte contents are modelled by counts, not buffers).  The
// type-of-service `marked` bit is the paper's end-of-burst marker.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/addr.hpp"
#include "sim/time.hpp"

namespace pp::net {

// Base class for application-level messages carried inside packets
// (e.g. the proxy's schedule broadcast).  Most packets carry none.
struct Message {
  virtual ~Message() = default;
};

struct TcpHeader {
  std::uint64_t seq = 0;  // first sequence number carried
  std::uint64_t ack = 0;  // cumulative ack
  std::uint32_t wnd = 0;  // advertised receive window (bytes)
  bool syn = false;
  bool ack_flag = false;
  bool fin = false;
  bool rst = false;
};

struct Packet {
  // Globally unique id, assigned by make_packet(); used by traces and tests.
  std::uint64_t id = 0;

  Ipv4Addr src;
  Port src_port = 0;
  Ipv4Addr dst;
  Port dst_port = 0;
  Protocol proto = Protocol::Udp;

  // Application payload bytes carried (0 for pure ACKs / control segments).
  std::uint32_t payload = 0;

  TcpHeader tcp;  // meaningful only when proto == Tcp

  // End-of-burst marker (the IP TOS bit of Section 3.2).
  bool marked = false;

  // Timestamp when the original sender handed the packet to the network.
  sim::Time sent_at;

  // Optional application message (schedule broadcasts, receiver reports...).
  std::shared_ptr<const Message> data;

  bool is_broadcast() const { return dst.is_broadcast(); }

  FlowKey flow() const { return {src, src_port, dst, dst_port, proto}; }

  // Bytes on the wire: payload plus IP + transport headers.  Link-layer
  // framing overhead is charged by the link models, not here.
  std::uint32_t wire_size() const {
    return payload + 20u + (proto == Protocol::Tcp ? 20u : 8u);
  }

  std::string str() const;
};

// Factory stamping a fresh unique id (monotonic, process-wide).
Packet make_packet();

}  // namespace pp::net

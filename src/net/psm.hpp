// 802.11 power-save mode (PSM) support — the baseline the paper's related
// work contrasts with (Section 2: the 802.11b mechanism "is not a good
// match for multimedia").
//
// Model: the access point broadcasts a beacon every beacon interval
// carrying a traffic indication map (TIM) listing dozing stations with
// buffered downlink frames.  Frames for PSM stations are held at the AP;
// after a beacon, the AP releases each indicated station's queue, marking
// the final frame (standing in for the "more data" bit clearing) so the
// station knows it may doze again.  PS-Poll handshakes are folded into the
// post-beacon release — a simplification that favours PSM slightly.
#pragma once

#include <vector>

#include "net/addr.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace pp::net {

inline constexpr Port kBeaconPort = 9010;

struct BeaconMessage : Message {
  std::uint64_t seq_no = 0;
  sim::Duration beacon_interval;
  // Stations with buffered downlink traffic.
  std::vector<Ipv4Addr> tim;

  bool indicates(Ipv4Addr ip) const {
    for (const auto& a : tim)
      if (a == ip) return true;
    return false;
  }
};

}  // namespace pp::net

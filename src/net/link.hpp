// Wired link models: a serializing unidirectional channel, a full-duplex
// point-to-point link, and a switched Ethernet LAN with a designated
// default (bridge) port for transparent-proxy topologies.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/addr.hpp"
#include "net/chunk.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace pp::net {

// Anything that can accept a packet.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void handle_packet(Packet pkt) = 0;
  // Batched delivery of a burst chain (one scheduled slot's worth of
  // datagrams for one client).  Sinks on the burst path override this to
  // keep the chain intact per hop; the default unbundles for sinks that
  // only understand single packets.
  virtual void handle_burst(ChunkQueue burst) {
    while (!burst.empty()) handle_packet(burst.pop_packet());
  }
};

struct WiredParams {
  double rate_bps = 100e6;                       // Fast Ethernet
  sim::Duration propagation = sim::Time::us(5);  // cable + switch latency
  std::uint32_t framing_bytes = 38;              // preamble+MAC+FCS+IFG
  std::uint32_t queue_limit_bytes = 1 << 20;     // drop-tail beyond this
};

// One direction of a wired link: serializes transmissions at `rate_bps`,
// models a drop-tail egress queue, then delivers after propagation delay.
class Channel {
 public:
  Channel(sim::Simulator& sim, WiredParams params, PacketSink& sink);

  // Queue a packet for transmission; returns false if dropped (queue full).
  bool transmit(Packet pkt);

  // Queue a whole burst chain as one reservation: one admission check and
  // one serialization/delivery event for the chain instead of N.  All-or-
  // nothing at admission (a slot's burst is one unit of work); the chain
  // arrives at the sink via handle_burst.  Empty bursts are a no-op.
  bool transmit_burst(ChunkQueue burst);

  // Fault injection: while down, every transmit is dropped on the floor
  // (counted in packets_dropped).  In-flight packets still arrive — a link
  // flap severs new transmissions, it does not claw bits off the wire.
  void set_down(bool down) { down_ = down; }
  bool down() const { return down_; }

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }
  // Bytes currently waiting (committed but not yet on the wire).
  std::uint64_t backlog_bytes() const { return backlog_bytes_; }

 private:
  sim::Duration tx_time(const Packet& pkt) const;

  sim::Simulator& sim_;
  WiredParams params_;
  PacketSink& sink_;
  sim::Time busy_until_ = sim::Time::zero();
  bool down_ = false;
  std::uint64_t backlog_bytes_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;
};

// Full-duplex point-to-point link between two sinks.
class PointToPointLink {
 public:
  PointToPointLink(sim::Simulator& sim, WiredParams params, PacketSink& a,
                   PacketSink& b)
      : a_to_b_{sim, params, b}, b_to_a_{sim, params, a} {}

  bool send_a_to_b(Packet pkt) { return a_to_b_.transmit(std::move(pkt)); }
  bool send_b_to_a(Packet pkt) { return b_to_a_.transmit(std::move(pkt)); }
  bool send_burst_a_to_b(ChunkQueue burst) {
    return a_to_b_.transmit_burst(std::move(burst));
  }

  Channel& a_to_b() { return a_to_b_; }
  Channel& b_to_a() { return b_to_a_; }

 private:
  Channel a_to_b_;
  Channel b_to_a_;
};

// Adapts a Channel (transmit side) to the PacketSink interface, so devices
// that push to a sink can feed a serializing channel.
class ChannelSink : public PacketSink {
 public:
  explicit ChannelSink(Channel& ch) : ch_{ch} {}
  void handle_packet(Packet pkt) override { ch_.transmit(std::move(pkt)); }

 private:
  Channel& ch_;
};

// A switched LAN: each attached port gets its own egress channel.  Frames
// are forwarded to the port owning the destination IP; unknown destinations
// go to the default port (the transparent proxy's bridge port), which is
// how server->client traffic reaches the proxy.
class EthernetLan {
 public:
  using PortId = std::size_t;

  EthernetLan(sim::Simulator& sim, WiredParams params = {});

  // Attach a device; packets destined to it are delivered to `sink`.
  PortId attach(PacketSink& sink, Ipv4Addr ip);
  // Attach the bridge/default device (no IP of its own).
  PortId attach_default(PacketSink& sink);

  // Send from a port.  Returns false if the egress queue dropped it.
  bool send(PortId from, Packet pkt);

  std::uint64_t packets_forwarded() const { return packets_forwarded_; }

 private:
  PortId do_attach(PacketSink& sink);

  sim::Simulator& sim_;
  WiredParams params_;
  std::vector<std::unique_ptr<Channel>> egress_;  // one per port
  std::unordered_map<Ipv4Addr, PortId, Ipv4AddrHash> by_ip_;
  PortId default_port_ = static_cast<PortId>(-1);
  std::uint64_t packets_forwarded_ = 0;
};

}  // namespace pp::net

#include "net/addr.hpp"

#include <cstdio>

namespace pp::net {

namespace {
std::uint64_t g_hash_salt = 0;
}  // namespace

std::uint64_t hash_salt() { return g_hash_salt; }
void set_hash_salt(std::uint64_t salt) { g_hash_salt = salt; }

std::string Ipv4Addr::str() const {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (raw_ >> 24) & 0xff,
                (raw_ >> 16) & 0xff, (raw_ >> 8) & 0xff, raw_ & 0xff);
  return buf;
}

std::ostream& operator<<(std::ostream& os, Ipv4Addr a) { return os << a.str(); }

std::string FlowKey::str() const {
  // pp-lint: allow(hot-path-alloc): cold debug rendering (trace/log only)
  return src.str() + ":" + std::to_string(src_port) + "->" + dst.str() + ":" +
         std::to_string(dst_port) + "/" + to_string(proto);  // pp-lint: allow(hot-path-alloc): cold debug rendering
}

}  // namespace pp::net

#include "net/chunk.hpp"

#include <utility>

#include "check/check.hpp"

namespace pp::net {

Chunk* ChunkPool::take_chunk() {
  if (free_chunks_.empty()) {
    chunk_slabs_.push_back(std::make_unique<Chunk[]>(kSlab));
    free_chunks_.reserve(chunk_slots());
    Chunk* slab = chunk_slabs_.back().get();
    for (std::size_t i = kSlab; i-- > 0;) free_chunks_.push_back(&slab[i]);
    ++slab_allocs_;
  }
  Chunk* c = free_chunks_.back();
  free_chunks_.pop_back();
  *c = Chunk{};
  return c;
}

void ChunkPool::give_chunk(Chunk* c) {
  c->data = nullptr;
  c->next = nullptr;
  free_chunks_.push_back(c);
}

ChunkDatagram* ChunkPool::take_datagram() {
  if (free_dgrams_.empty()) {
    dgram_slabs_.push_back(std::make_unique<ChunkDatagram[]>(kSlab));
    free_dgrams_.reserve(dgram_slabs_.size() * kSlab);
    ChunkDatagram* slab = dgram_slabs_.back().get();
    for (std::size_t i = kSlab; i-- > 0;) free_dgrams_.push_back(&slab[i]);
    ++slab_allocs_;
  }
  ChunkDatagram* d = free_dgrams_.back();
  free_dgrams_.pop_back();
  d->refs = 0;
  return d;
}

void ChunkPool::give_datagram(ChunkDatagram* d) {
  d->pkt = Packet{};  // drop the payload Message reference now, not at reuse
  free_dgrams_.push_back(d);
}

ChunkQueue::ChunkQueue(ChunkQueue&& o) noexcept
    : pool_{std::move(o.pool_)},
      head_{o.head_},
      tail_{o.tail_},
      bytes_{o.bytes_},
      count_{o.count_} {
  o.head_ = nullptr;
  o.tail_ = nullptr;
  o.bytes_ = 0;
  o.count_ = 0;
}

ChunkQueue& ChunkQueue::operator=(ChunkQueue&& o) noexcept {
  if (this == &o) return *this;
  clear();
  pool_ = std::move(o.pool_);
  head_ = o.head_;
  tail_ = o.tail_;
  bytes_ = o.bytes_;
  count_ = o.count_;
  o.head_ = nullptr;
  o.tail_ = nullptr;
  o.bytes_ = 0;
  o.count_ = 0;
  return *this;
}

void ChunkQueue::push(Packet pkt) {
  PP_CHECK(pool_ != nullptr, "net.chunk.no_pool");
  ChunkDatagram* d = pool_->take_datagram();
  d->pkt = std::move(pkt);
  d->refs = 1;
  Chunk* c = pool_->take_chunk();
  c->data = d;
  c->offset = 0;
  c->length = d->pkt.payload;
  c->marked = d->pkt.marked;
  if (tail_ == nullptr) {
    head_ = tail_ = c;
  } else {
    tail_->next = c;
    tail_ = c;
  }
  bytes_ += c->length;
  ++count_;
}

void ChunkQueue::release(Chunk* c) {
  ChunkDatagram* d = c->data;
  pool_->give_chunk(c);
  if (d != nullptr && --d->refs == 0) pool_->give_datagram(d);
}

Packet ChunkQueue::pop_packet() {
  PP_CHECK(head_ != nullptr, "net.chunk.pop_empty");
  Chunk* c = head_;
  head_ = c->next;
  if (head_ == nullptr) tail_ = nullptr;
  bytes_ -= c->length;
  --count_;

  ChunkDatagram* d = c->data;
  Packet out;
  const bool sole_full_view =
      d->refs == 1 && c->offset == 0 && c->length == d->pkt.payload;
  if (sole_full_view) {
    out = std::move(d->pkt);
  } else {
    out = d->pkt;
    out.payload = c->length;
  }
  out.marked = out.marked || c->marked;
  release(c);
  return out;
}

void ChunkQueue::drop_front() {
  PP_CHECK(head_ != nullptr, "net.chunk.pop_empty");
  Chunk* c = head_;
  head_ = c->next;
  if (head_ == nullptr) tail_ = nullptr;
  bytes_ -= c->length;
  --count_;
  release(c);
}

void ChunkQueue::pop_front_to(ChunkQueue& dst) {
  PP_CHECK(head_ != nullptr, "net.chunk.pop_empty");
  PP_CHECK(dst.pool_.get() == pool_.get(), "net.chunk.pool_mismatch");
  Chunk* c = head_;
  head_ = c->next;
  if (head_ == nullptr) tail_ = nullptr;
  bytes_ -= c->length;
  --count_;
  c->next = nullptr;
  if (dst.tail_ == nullptr) {
    dst.head_ = dst.tail_ = c;
  } else {
    dst.tail_->next = c;
    dst.tail_ = c;
  }
  dst.bytes_ += c->length;
  ++dst.count_;
}

void ChunkQueue::move_all_to(ChunkQueue& dst) {
  if (head_ == nullptr) return;
  PP_CHECK(dst.pool_.get() == pool_.get(), "net.chunk.pool_mismatch");
  if (dst.tail_ == nullptr) {
    dst.head_ = head_;
  } else {
    dst.tail_->next = head_;
  }
  dst.tail_ = tail_;
  dst.bytes_ += bytes_;
  dst.count_ += count_;
  head_ = nullptr;
  tail_ = nullptr;
  bytes_ = 0;
  count_ = 0;
}

void ChunkQueue::split_front(std::uint32_t bytes) {
  PP_CHECK(head_ != nullptr, "net.chunk.pop_empty");
  PP_CHECK(bytes > 0 && bytes < head_->length, "net.chunk.split_range");
  Chunk* rest = pool_->take_chunk();
  rest->data = head_->data;
  ++rest->data->refs;
  rest->offset = head_->offset + bytes;
  rest->length = head_->length - bytes;
  rest->marked = head_->marked;  // the mark stays with the burst's last bytes
  rest->next = head_->next;
  head_->length = bytes;
  head_->marked = false;
  head_->next = rest;
  if (tail_ == head_) tail_ = rest;
  ++count_;
}

void ChunkQueue::mark_tail() {
  PP_CHECK(tail_ != nullptr, "net.chunk.mark_empty");
  tail_->marked = true;
}

void ChunkQueue::clear() {
  Chunk* c = head_;
  while (c != nullptr) {
    Chunk* next = c->next;
    release(c);
    c = next;
  }
  head_ = nullptr;
  tail_ = nullptr;
  bytes_ = 0;
  count_ = 0;
}

void ChunkQueue::audit() const {
  std::uint64_t bytes = 0;
  std::uint32_t count = 0;
  const Chunk* last = nullptr;
  for (const Chunk* c = head_; c != nullptr; c = c->next) {
    PP_CHECK(c->data != nullptr && c->data->refs > 0, "net.chunk.dangling");
    PP_CHECK(c->offset + c->length <= c->data->pkt.payload,
             "net.chunk.view_range");
    bytes += c->length;
    ++count;
    last = c;
  }
  PP_CHECK(bytes == bytes_ && count == count_, "net.chunk.totals");
  PP_CHECK(last == tail_, "net.chunk.tail");
}

}  // namespace pp::net

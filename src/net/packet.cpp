#include "net/packet.hpp"

#include <atomic>
#include <sstream>

namespace pp::net {

Packet make_packet() {
  static std::atomic<std::uint64_t> next_id{1};
  Packet p;
  p.id = next_id.fetch_add(1, std::memory_order_relaxed);
  return p;
}

std::string Packet::str() const {
  // pp-lint: allow(hot-path-alloc): cold debug rendering (trace/log only)
  std::ostringstream os;
  os << "#" << id << " " << flow().str() << " len=" << payload;
  if (proto == Protocol::Tcp) {
    os << " seq=" << tcp.seq << " ack=" << tcp.ack;
    if (tcp.syn) os << " SYN";
    if (tcp.fin) os << " FIN";
    if (tcp.rst) os << " RST";
    if (tcp.ack_flag) os << " ACK";
  }
  if (marked) os << " [MARK]";
  return os.str();
}

}  // namespace pp::net

#include "net/access_point.hpp"

#include <stdexcept>
#include <utility>

#include "check/check.hpp"
#include "check/sorted.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace pp::net {

AccessPoint::AccessPoint(sim::Simulator& sim, WirelessMedium& medium,
                         AccessPointParams params)
    : sim_{sim}, medium_{medium}, params_{params} {
  radio_id_ = medium_.attach_access_point(*this);
}

void AccessPoint::handle_packet(Packet pkt) {
  ++downlink_in_;
  // PSM stations' frames are parked until the next beacon indicates them.
  if (psm_enabled_) {
    auto it = psm_queues_.find(pkt.dst);
    if (it != psm_queues_.end()) {
      // Per-station parking cap (payload bytes), separate from the
      // forwarding backlog.
      ChunkQueue& q = it->second;
      if (q.bytes() + pkt.payload > params_.queue_limit_bytes) {
        ++dropped_;
        note_drop(pkt);
        return;
      }
      q.push(std::move(pkt));
      return;
    }
  }
  forward_downlink(std::move(pkt));
}

void AccessPoint::handle_burst(ChunkQueue burst) {
  if (burst.empty()) return;
  // Stalled AP or PSM-parked destination: off the batched fast path —
  // unbundle onto the per-frame machinery (which re-counts downlink_in_).
  const Ipv4Addr dst = burst.front()->data->pkt.dst;
  if (stalled_ || (psm_enabled_ && psm_queues_.count(dst) > 0)) {
    while (!burst.empty()) handle_packet(burst.pop_packet());
    return;
  }
  const std::uint64_t n = burst.packets();
  downlink_in_ += n;
  std::uint64_t wire = 0;
  burst.for_each([&wire](const Chunk& c) { wire += chunk_wire_bytes(c); });
  // One admission check for the chain: a slot's burst is one unit of work.
  if (backlog_bytes_ + wire > params_.queue_limit_bytes) {
    dropped_ += n;
    PP_OBS(burst.for_each([this](const Chunk& c) {
      if (ctr_dropped_) ctr_dropped_->inc();
      if (auto* tl = obs_.timeline())
        tl->record(sim_.now(), obs::EventKind::Drop, c.data->pkt.dst.raw(),
                   c.length);
    }));
    return;  // the chain releases its views on destruction
  }
  backlog_bytes_ += wire;
  backlog_packets_ += n;
  PP_OBS(if (twg_backlog_)
             twg_backlog_->set(sim_.now(), static_cast<double>(backlog_bytes_)));
  // One service-delay draw for the whole burst: the slot's frames leave
  // the AP back-to-back, so base delay + jitter (+ spike) is paid once.
  sim::Duration delay = params_.base_delay;
  auto& rng = sim_.rng();
  delay += sim::Time::ns(static_cast<std::int64_t>(
      rng.uniform() * static_cast<double>(params_.jitter_max.count_ns())));
  if (params_.p_spike > 0 && rng.chance(params_.p_spike)) {
    delay += sim::Time::ns(static_cast<std::int64_t>(
        rng.uniform() * static_cast<double>(params_.spike_max.count_ns())));
  }
  sim::Time depart = sim_.now() + delay;
  if (depart < last_departure_) depart = last_departure_;
  last_departure_ = depart;
  sim_.at(depart, [this, wire, n, b = std::move(burst)]() mutable {
    PP_CHECK_AT(backlog_bytes_ >= wire && backlog_packets_ >= n,
                "net.access_point.backlog", sim_.now());
    backlog_bytes_ -= wire;
    backlog_packets_ -= n;
    forwarded_ += n;
    PP_OBS(if (ctr_forwarded_) {
      ctr_forwarded_->inc(n);
      twg_backlog_->set(sim_.now(), static_cast<double>(backlog_bytes_));
    });
    medium_.transmit_burst(radio_id_, std::move(b));
  });
}

void AccessPoint::note_drop(const Packet& pkt) {
  (void)pkt;
  PP_OBS(if (ctr_dropped_) ctr_dropped_->inc();
         if (auto* tl = obs_.timeline())
             tl->record(sim_.now(), obs::EventKind::Drop, pkt.dst.raw(),
                        pkt.payload));
}

void AccessPoint::set_obs(obs::Hook hook) {
  (void)hook;
  PP_OBS(obs_ = hook; if (auto* m = obs_.metrics()) {
    ctr_dropped_ = m->counter("ap.downlink_dropped");
    ctr_forwarded_ = m->counter("ap.downlink_forwarded");
    twg_backlog_ = m->time_gauge("ap.backlog_bytes");
    twg_backlog_->set(sim_.now(), static_cast<double>(backlog_bytes_));
  });
}

void AccessPoint::forward_downlink(Packet pkt) {
  if (backlog_bytes_ + pkt.wire_size() > params_.queue_limit_bytes) {
    ++dropped_;
    note_drop(pkt);
    return;
  }
  backlog_bytes_ += pkt.wire_size();
  ++backlog_packets_;
  PP_OBS(if (twg_backlog_)
             twg_backlog_->set(sim_.now(), static_cast<double>(backlog_bytes_)));
  if (stalled_) {
    stalled_q_.push_back(std::move(pkt));
    return;
  }
  dispatch_downlink(std::move(pkt));
}

void AccessPoint::set_stalled(bool stalled) {
  stalled_ = stalled;
  if (stalled_) return;
  // Release frozen frames in arrival order; each gets a fresh service
  // delay, and the last_departure_ FIFO clamp keeps them in sequence.
  while (!stalled_q_.empty()) {
    Packet p = std::move(stalled_q_.front());
    stalled_q_.pop_front();
    dispatch_downlink(std::move(p));
  }
}

void AccessPoint::dispatch_downlink(Packet pkt) {
  sim::Duration delay = params_.base_delay;
  auto& rng = sim_.rng();
  delay += sim::Time::ns(static_cast<std::int64_t>(
      rng.uniform() * static_cast<double>(params_.jitter_max.count_ns())));
  if (params_.p_spike > 0 && rng.chance(params_.p_spike)) {
    delay += sim::Time::ns(static_cast<std::int64_t>(
        rng.uniform() * static_cast<double>(params_.spike_max.count_ns())));
  }
  // FIFO: a frame never departs before its predecessor.
  sim::Time depart = sim_.now() + delay;
  if (depart < last_departure_) depart = last_departure_;
  last_departure_ = depart;

  const std::uint32_t wire = pkt.wire_size();
  sim_.at(depart, [this, wire, p = std::move(pkt)]() mutable {
    PP_CHECK_AT(backlog_bytes_ >= wire && backlog_packets_ > 0,
                "net.access_point.backlog", sim_.now());
    backlog_bytes_ -= wire;
    --backlog_packets_;
    ++forwarded_;
    PP_OBS(if (ctr_forwarded_) {
      ctr_forwarded_->inc();
      twg_backlog_->set(sim_.now(), static_cast<double>(backlog_bytes_));
    });
    medium_.transmit(radio_id_, std::move(p));
  });
}

void AccessPoint::deliver(Packet pkt, sim::Duration /*airtime*/) {
  if (uplink_ == nullptr)
    throw std::logic_error("AccessPoint: uplink sink not set");
  uplink_->handle_packet(std::move(pkt));
}

void AccessPoint::enable_psm(sim::Duration interval) {
  psm_enabled_ = true;
  beacon_interval_ = interval;
  beacon_timer_ = sim_.after(interval, [this] { send_beacon(); });
}

void AccessPoint::register_psm_station(Ipv4Addr ip) {
  psm_queues_.emplace(ip, ChunkQueue{chunk_pool_});
  psm_registered_.emplace(ip, true);
}

void AccessPoint::associate(Ipv4Addr ip) {
  if (psm_registered_.find(ip) == psm_registered_.end()) return;
  psm_queues_.emplace(ip, ChunkQueue{chunk_pool_});  // no-op if present
}

void AccessPoint::disassociate(Ipv4Addr ip) {
  auto it = psm_queues_.find(ip);
  if (it == psm_queues_.end()) return;
  // Flush the departed station's parked frames into the drop counter —
  // each one entered downlink_in_, so conservation demands they leave
  // through dropped_.  Erasing the queue removes the TIM entry and stops
  // further parking until the station re-associates.
  ChunkQueue& q = it->second;
  while (!q.empty()) {
    ++dropped_;
    ++assoc_flushed_;
    const Chunk* c = q.front();
    PP_OBS(if (ctr_dropped_) ctr_dropped_->inc();
           if (auto* tl = obs_.timeline())
               tl->record(sim_.now(), obs::EventKind::Drop,
                          c->data->pkt.dst.raw(), c->length));
    (void)c;
    q.drop_front();
  }
  psm_queues_.erase(it);
}

std::uint64_t AccessPoint::psm_buffered_frames() const {
  std::uint64_t n = 0;
  // pp-lint: allow(unordered-iter): order-insensitive sum over queue sizes
  for (const auto& [ip, q] : psm_queues_) n += q.packets();
  return n;
}

void AccessPoint::audit() const {
  // Packet conservation: every downlink frame that ever entered the AP is
  // accounted for exactly once — forwarded onto the air, dropped at a queue
  // limit, sitting in the FIFO backlog, or parked in a PSM queue.
  PP_CHECK_AT(downlink_in_ ==
                  forwarded_ + dropped_ + backlog_packets_ +
                      psm_buffered_frames(),
              "net.access_point.packet_conservation", sim_.now());
}

void AccessPoint::send_beacon() {
  auto msg = std::make_shared<BeaconMessage>();
  msg->seq_no = ++beacon_seq_;
  msg->beacon_interval = beacon_interval_;
  // Sorted so the TIM element order (and hence beacon payload size per
  // station order downstream) never depends on hash-bucket layout.
  msg->tim.reserve(psm_queues_.size());
  for (const auto* kv : check::sorted_items(psm_queues_))
    if (!kv->second.empty()) msg->tim.push_back(kv->first);

  Packet beacon = make_packet();
  beacon.dst = Ipv4Addr::broadcast();
  beacon.dst_port = kBeaconPort;
  beacon.src_port = kBeaconPort;
  beacon.proto = Protocol::Udp;
  beacon.payload = 24 + static_cast<std::uint32_t>(msg->tim.size()) * 4;
  beacon.data = std::move(msg);
  beacon.sent_at = sim_.now();
  ++beacons_sent_;
  medium_.transmit(radio_id_, std::move(beacon));

  // Release parked frames once the beacon has reached the stations and
  // the awake ones have PS-Polled; a dozing station's frames stay parked
  // for a later beacon.
  const sim::Time polled = medium_.busy_until() + sim::Time::us(200);
  sim_.at(polled, [this] {
    // Sorted: the flush order decides downlink FIFO order across stations,
    // which must not depend on hash-bucket layout.
    for (auto* kv : check::sorted_items(psm_queues_)) {
      ChunkQueue& q = kv->second;
      if (q.empty() || !medium_.station_listening(kv->first)) continue;
      while (!q.empty()) {
        Packet p = q.pop_packet();
        if (q.empty()) p.marked = true;
        forward_downlink(std::move(p));
      }
    }
  });
  beacon_timer_ = sim_.after(beacon_interval_, [this] { send_beacon(); });
}

}  // namespace pp::net

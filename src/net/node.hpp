// A host's network stack: owns the IP identity, demultiplexes incoming
// packets to UDP/TCP handlers, and hands outgoing packets to a transmitter
// (a LAN port, a point-to-point link, or a wireless interface).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/addr.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace pp::net {

// Implemented by TCP connections.
class SegmentHandler {
 public:
  virtual ~SegmentHandler() = default;
  virtual void on_segment(const Packet& pkt) = 0;
};

// Implemented by UDP sockets.
class DatagramHandler {
 public:
  virtual ~DatagramHandler() = default;
  virtual void on_datagram(const Packet& pkt) = 0;
};

// Accepts incoming TCP connections on a listening port.  Returns the
// handler for the new connection (which the node registers), or nullptr
// to refuse.
// pp-lint: allow(hot-path-alloc): constructed once per listener at wiring
using TcpAcceptFn = std::function<SegmentHandler*(const Packet& syn)>;

class Node : public PacketSink {
 public:
  Node(sim::Simulator& sim, Ipv4Addr ip, std::string name);

  sim::Simulator& sim() { return sim_; }
  Ipv4Addr ip() const { return ip_; }
  const std::string& name() const { return name_; }

  // pp-lint: allow(hot-path-alloc): constructed once at topology wiring
  void set_transmitter(std::function<void(Packet)> tx) { tx_ = std::move(tx); }

  // Stamp sent_at and hand to the transmitter.
  void send(Packet pkt);

  // Allocate an ephemeral source port.
  Port alloc_port() { return next_port_++; }

  // -- Demux registration ----------------------------------------------------
  void bind_udp(Port port, DatagramHandler& h);
  void unbind_udp(Port port);
  // Key is the flow as seen on incoming packets: (remote -> local).
  void register_tcp(const FlowKey& incoming, SegmentHandler& h);
  void unregister_tcp(const FlowKey& incoming);
  void listen_tcp(Port port, TcpAcceptFn accept);
  void unlisten_tcp(Port port);

  // PacketSink.
  void handle_packet(Packet pkt) override;

  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t packets_unrouted() const { return packets_unrouted_; }

 private:
  sim::Simulator& sim_;
  Ipv4Addr ip_;
  std::string name_;
  // pp-lint: allow(hot-path-alloc): assigned once; invocation does not allocate
  std::function<void(Packet)> tx_;
  Port next_port_ = 40000;
  std::unordered_map<Port, DatagramHandler*> udp_;
  std::unordered_map<FlowKey, SegmentHandler*, FlowKeyHash> tcp_;
  std::unordered_map<Port, TcpAcceptFn> listeners_;
  std::uint64_t packets_received_ = 0;
  std::uint64_t packets_unrouted_ = 0;
};

}  // namespace pp::net

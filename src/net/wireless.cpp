#include "net/wireless.hpp"

#include <stdexcept>
#include <utility>

#include "check/check.hpp"
#include "obs/metrics.hpp"

namespace pp::net {

WirelessMedium::WirelessMedium(sim::Simulator& sim, WirelessParams params)
    : sim_{sim}, params_{params} {}

WirelessMedium::StationId WirelessMedium::attach_access_point(
    WirelessStation& ap) {
  if (ap_ != kNoStation)
    throw std::logic_error("WirelessMedium: access point already attached");
  stations_.push_back(Entry{&ap, Ipv4Addr{}});
  ap_ = stations_.size() - 1;
  return ap_;
}

WirelessMedium::StationId WirelessMedium::attach_station(WirelessStation& st,
                                                         Ipv4Addr ip) {
  stations_.push_back(Entry{&st, ip});
  return stations_.size() - 1;
}

void WirelessMedium::set_obs(obs::Hook hook) {
  (void)hook;
  PP_OBS(obs_ = hook; if (auto* m = obs_.metrics()) {
    ctr_frames_sent_ = m->counter("net.frames_sent");
    ctr_frames_missed_ = m->counter("net.frames_missed");
    ctr_bursts_ = m->counter("net.bursts");
    hist_airtime_us_ = m->histogram("net.frame_airtime_us");
    hist_burst_frames_ = m->histogram("net.burst_frames");
  });
}

bool WirelessMedium::station_listening(Ipv4Addr ip) const {
  for (const auto& e : stations_) {
    if (e.ip == ip) return e.station->listening();
  }
  return false;
}

sim::Duration WirelessMedium::airtime_of(const Packet& pkt) const {
  const double rate =
      pkt.is_broadcast() ? params_.broadcast_rate_bps : params_.rate_bps;
  const double bits =
      8.0 * static_cast<double>(pkt.wire_size() + params_.mac_framing_bytes);
  return params_.per_frame_overhead + sim::Time::seconds(bits / rate);
}

void WirelessMedium::transmit(StationId sender, Packet pkt) {
  PP_CHECK_AT(sender < stations_.size(), "net.wireless.sender_id",
              sim_.now());
  const sim::Duration airtime = airtime_of(pkt);
  const sim::Time start =
      busy_until_ > sim_.now() ? busy_until_ : sim_.now();
  const sim::Time end = start + airtime;
  busy_until_ = end;
  ++frames_sent_;
  PP_OBS(if (ctr_frames_sent_) {
    ctr_frames_sent_->inc();
    hist_airtime_us_->observe(static_cast<std::uint64_t>(airtime.count_us()));
  });
  stations_[sender].station->on_air(start, airtime);
  sim_.at(end + params_.propagation,
          [this, sender, airtime, start, p = std::move(pkt)]() mutable {
            finish_frame(sender, std::move(p), start, airtime);
          });
}

void WirelessMedium::transmit_burst(StationId sender, ChunkQueue burst) {
  if (burst.empty()) return;
  PP_CHECK_AT(sender == ap_, "net.wireless.burst_sender", sim_.now());
  // One airtime computation over the chain: per-frame MAC overhead and
  // framing still apply to every frame; only the reservation is shared.
  const Ipv4Addr dst = burst.front()->data->pkt.dst;
  PP_CHECK_AT(!dst.is_broadcast(), "net.wireless.burst_broadcast",
              sim_.now());
  std::uint64_t wire_and_framing = 0;
  burst.for_each([this, dst, &wire_and_framing](const Chunk& c) {
    PP_CHECK_AT(c.data->pkt.dst == dst, "net.wireless.burst_multi_client",
                sim_.now());
    wire_and_framing += chunk_wire_bytes(c) + params_.mac_framing_bytes;
  });
  const std::uint64_t n = burst.packets();
  const sim::Duration airtime =
      params_.per_frame_overhead * static_cast<std::int64_t>(n) +
      sim::Time::seconds(8.0 * static_cast<double>(wire_and_framing) /
                         params_.rate_bps);
  const sim::Time start = busy_until_ > sim_.now() ? busy_until_ : sim_.now();
  const sim::Time end = start + airtime;
  busy_until_ = end;
  frames_sent_ += n;
  PP_OBS(if (ctr_frames_sent_) {
    ctr_frames_sent_->inc(n);
    ctr_bursts_->inc();
    hist_burst_frames_->observe(n);
    burst.for_each([this](const Chunk& c) {
      hist_airtime_us_->observe(static_cast<std::uint64_t>(
          (params_.per_frame_overhead +
           sim::Time::seconds(8.0 *
                              static_cast<double>(chunk_wire_bytes(c) +
                                                  params_.mac_framing_bytes) /
                              params_.rate_bps))
              .count_us()));
    });
  });
  stations_[sender].station->on_air(start, airtime);
  sim_.at(end + params_.propagation,
          [this, start, b = std::move(burst)]() mutable {
            finish_burst(std::move(b), start);
          });
}

void WirelessMedium::finish_burst(ChunkQueue burst, sim::Time air_start) {
  // Resolve the addressed station once: the whole chain shares one client.
  const Ipv4Addr dst = burst.front()->data->pkt.dst;
  StationId receiver = kNoStation;
  for (StationId i = 0; i < stations_.size(); ++i) {
    if (i != ap_ && stations_[i].ip == dst) {
      receiver = i;
      break;
    }
  }
  const bool keep = !sniffers_.empty();
  sim::Time t = air_start;
  while (!burst.empty()) {
    Packet pkt = burst.pop_packet();
    const sim::Duration airtime = airtime_of(pkt);
    const sim::Time frame_start = t;
    t = t + airtime;
    if (receiver == kNoStation) {
      ++frames_missed_;  // no such station; the frame vanishes
      continue;
    }
    bool any_delivered = false;
    if (keep) {
      deliver_to(receiver, pkt, frame_start, airtime, any_delivered);
      SnifferRecord rec{std::move(pkt), frame_start, airtime,
                       /*from_ap=*/true, any_delivered};
      for (auto& s : sniffers_) s(rec);
    } else {
      deliver_to(receiver, std::move(pkt), frame_start, airtime,
                 any_delivered);
    }
  }
}

void WirelessMedium::deliver_to(StationId receiver, Packet pkt,
                                sim::Time air_start, sim::Duration airtime,
                                bool& any_delivered) {
  (void)air_start;
  WirelessStation& st = *stations_[receiver].station;
  // The corruption draw happens whether or not the station is listening,
  // so installing a model (or changing p_loss) consumes the same number of
  // draws regardless of sleep schedules.
  const bool corrupted =
      loss_model_ != nullptr
          ? loss_model_->corrupted(pkt, stations_[receiver].ip, sim_.now())
          : (params_.p_loss > 0 && sim_.rng().chance(params_.p_loss));
  if (st.listening() && !corrupted) {
    st.deliver(std::move(pkt), airtime);
    any_delivered = true;
  } else {
    st.missed(pkt, airtime);
    ++frames_missed_;
    PP_OBS(if (ctr_frames_missed_) ctr_frames_missed_->inc());
  }
}

void WirelessMedium::finish_frame(StationId sender, Packet pkt,
                                  sim::Time air_start, sim::Duration airtime) {
  if (ap_ == kNoStation)
    throw std::logic_error("WirelessMedium: no access point attached");
  bool any_delivered = false;
  // When no sniffers are attached, the frame's last delivery can consume
  // the packet — one fewer payload-shared_ptr refcount round trip per hop.
  const bool keep = !sniffers_.empty();
  if (sender == ap_) {
    if (pkt.is_broadcast()) {
      StationId last = kNoStation;
      for (StationId i = stations_.size(); i-- > 0;) {
        if (i != ap_) {
          last = i;
          break;
        }
      }
      for (StationId i = 0; i < stations_.size(); ++i) {
        if (i == ap_) continue;
        if (!keep && i == last) {
          deliver_to(i, std::move(pkt), air_start, airtime, any_delivered);
        } else {
          deliver_to(i, pkt, air_start, airtime, any_delivered);
        }
      }
    } else {
      // Unicast downlink: find the addressed station.
      bool found = false;
      for (StationId i = 0; i < stations_.size(); ++i) {
        if (i != ap_ && stations_[i].ip == pkt.dst) {
          if (keep) {
            deliver_to(i, pkt, air_start, airtime, any_delivered);
          } else {
            deliver_to(i, std::move(pkt), air_start, airtime, any_delivered);
          }
          found = true;
          break;
        }
      }
      if (!found) ++frames_missed_;  // no such station; frame vanishes
    }
  } else {
    // Uplink: always handed to the access point (infrastructure mode).
    if (keep) {
      deliver_to(ap_, pkt, air_start, airtime, any_delivered);
    } else {
      deliver_to(ap_, std::move(pkt), air_start, airtime, any_delivered);
    }
  }
  const bool from_ap = sender == ap_;
  if (!sniffers_.empty()) {
    SnifferRecord rec{std::move(pkt), air_start, airtime, from_ap,
                      any_delivered};
    for (auto& s : sniffers_) s(rec);
  }
}

}  // namespace pp::net

#include "net/node.hpp"

#include <stdexcept>
#include <utility>

namespace pp::net {

Node::Node(sim::Simulator& sim, Ipv4Addr ip, std::string name)
    : sim_{sim}, ip_{ip}, name_{std::move(name)} {}

void Node::send(Packet pkt) {
  // pp-lint: allow(hot-path-alloc): error-path message; the throw aborts
  if (!tx_) throw std::logic_error("Node " + name_ + ": no transmitter");
  pkt.sent_at = sim_.now();
  tx_(std::move(pkt));
}

void Node::bind_udp(Port port, DatagramHandler& h) {
  if (!udp_.emplace(port, &h).second)
    // pp-lint: allow(hot-path-alloc): error-path message; the throw aborts
    throw std::logic_error(name_ + ": UDP port already bound");
}

void Node::unbind_udp(Port port) { udp_.erase(port); }

void Node::register_tcp(const FlowKey& incoming, SegmentHandler& h) {
  if (!tcp_.emplace(incoming, &h).second)
    // pp-lint: allow(hot-path-alloc): error-path message; the throw aborts
    throw std::logic_error(name_ + ": TCP flow already registered: " +
                           incoming.str());
}

void Node::unregister_tcp(const FlowKey& incoming) { tcp_.erase(incoming); }

void Node::listen_tcp(Port port, TcpAcceptFn accept) {
  listeners_[port] = std::move(accept);
}

void Node::unlisten_tcp(Port port) { listeners_.erase(port); }

void Node::handle_packet(Packet pkt) {
  ++packets_received_;
  if (pkt.proto == Protocol::Udp) {
    auto it = udp_.find(pkt.dst_port);
    if (it != udp_.end()) {
      it->second->on_datagram(pkt);
    } else {
      ++packets_unrouted_;
    }
    return;
  }
  // TCP: established flows first, then listeners for SYNs.
  auto it = tcp_.find(pkt.flow());
  if (it != tcp_.end()) {
    it->second->on_segment(pkt);
    return;
  }
  if (pkt.tcp.syn && !pkt.tcp.ack_flag) {
    auto lit = listeners_.find(pkt.dst_port);
    if (lit != listeners_.end()) {
      if (SegmentHandler* h = lit->second(pkt)) {
        register_tcp(pkt.flow(), *h);
        h->on_segment(pkt);
        return;
      }
    }
  }
  ++packets_unrouted_;
}

}  // namespace pp::net

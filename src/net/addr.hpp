// Network addressing primitives: IPv4 addresses, ports, protocol, flow keys.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace pp::net {

class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t raw) : raw_{raw} {}
  static constexpr Ipv4Addr octets(std::uint8_t a, std::uint8_t b,
                                   std::uint8_t c, std::uint8_t d) {
    return Ipv4Addr{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | std::uint32_t{d}};
  }
  // Limited broadcast (255.255.255.255), used for schedule messages.
  static constexpr Ipv4Addr broadcast() { return Ipv4Addr{0xffffffffu}; }

  constexpr std::uint32_t raw() const { return raw_; }
  constexpr bool is_broadcast() const { return raw_ == 0xffffffffu; }
  constexpr auto operator<=>(const Ipv4Addr&) const = default;

  std::string str() const;

 private:
  std::uint32_t raw_ = 0;
};

std::ostream& operator<<(std::ostream& os, Ipv4Addr a);

using Port = std::uint16_t;

enum class Protocol : std::uint8_t { Udp, Tcp };

inline const char* to_string(Protocol p) {
  return p == Protocol::Udp ? "UDP" : "TCP";
}

// Directed 5-tuple identifying one direction of a flow.
struct FlowKey {
  Ipv4Addr src;
  Port src_port = 0;
  Ipv4Addr dst;
  Port dst_port = 0;
  Protocol proto = Protocol::Udp;

  auto operator<=>(const FlowKey&) const = default;

  FlowKey reversed() const { return {dst, dst_port, src, src_port, proto}; }
  std::string str() const;
};

// Global salt mixed into every unordered-container hash below.  Simulation
// behaviour must not depend on unordered iteration order, and this is how
// that contract is enforced: the determinism harness runs each scenario
// under two different salts — which permute bucket order everywhere — and
// diffs the resulting timeline digests (see exp::run_digest).  Defaults to
// 0; tests and tools set it before building any topology.
std::uint64_t hash_salt();
void set_hash_salt(std::uint64_t salt);

// splitmix64 finalizer: full-avalanche mix so salting perturbs every bit.
inline std::uint64_t mix_hash(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    std::uint64_t h = hash_salt() ^ k.src.raw();
    h = h * 0x9e3779b97f4a7c15ULL + k.dst.raw();
    h = h * 0x9e3779b97f4a7c15ULL + (std::uint64_t{k.src_port} << 17);
    h = h * 0x9e3779b97f4a7c15ULL + (std::uint64_t{k.dst_port} << 1);
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(k.proto);
    return static_cast<std::size_t>(mix_hash(h));
  }
};

struct Ipv4AddrHash {
  std::size_t operator()(const Ipv4Addr& a) const {
    return static_cast<std::size_t>(mix_hash(hash_salt() ^ a.raw()));
  }
};

}  // namespace pp::net

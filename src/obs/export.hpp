// Exporters: turn a MetricsRegistry + Timeline into JSONL or CSV, and read
// the JSONL back (round-trip) so external tools and examples/obs_report
// can analyze a run without linking the simulator.
//
// JSONL: one self-describing object per line —
//   {"type":"counter","name":"proxy.schedules_sent","value":280}
//   {"type":"time_gauge","name":"proxy.queue_depth_bytes","mean":...,...}
//   {"type":"histogram","name":"...","count":..,"sum":..,"min":..,"max":..,
//    "buckets":[[floor,count],...]}        (non-empty buckets only)
//   {"type":"event","t_ns":..,"dur_ns":..,"kind":"burst",
//    "subject":"172.16.0.1","value":1400}
// The grammar is flat (no nested objects, no string escapes needed), so
// the reader is a small hand-rolled scanner rather than a JSON library.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace pp::obs {

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0;
};

struct TimeGaugeSample {
  std::string name;
  double mean = 0, min = 0, max = 0, last = 0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0, sum = 0, min = 0, max = 0;
  // (bucket floor value, count), non-empty buckets only, ascending.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

// A run's full exported/re-imported observability surface.
struct Report {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<TimeGaugeSample> time_gauges;
  std::vector<HistogramSample> histograms;
  std::vector<TimelineEvent> events;

  const CounterSample* find_counter(const std::string& name) const;
  const TimeGaugeSample* find_time_gauge(const std::string& name) const;
  const HistogramSample* find_histogram(const std::string& name) const;
};

// Snapshot live structures (timeline may be null).
Report snapshot(const MetricsRegistry& reg, const Timeline* timeline);

void write_jsonl(std::ostream& os, const Report& report);
// Throws std::runtime_error on malformed input.
Report read_jsonl(std::istream& is);

// CSV, two flavors: metrics (one row per named metric) and timeline (one
// row per event).
void write_metrics_csv(std::ostream& os, const Report& report);
void write_timeline_csv(std::ostream& os, const Report& report);

// Dotted-quad rendering of a timeline subject ("-" for 0).
std::string subject_str(std::uint32_t raw);

}  // namespace pp::obs

// MetricsRegistry: named counters, gauges, sim-time-weighted gauges, and
// log-bucketed histograms.
//
// One registry serves a whole simulation (it lives in exp::Testbed's
// Observer).  Components resolve handles once — counter()/gauge()/... are
// map lookups — and then update through the returned pointer on the hot
// path.  Handles stay valid for the registry's lifetime (std::map nodes
// are stable).  Iteration order is the sorted name order, so exports are
// deterministic.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>

#include "sim/time.hpp"

namespace pp::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }
  void merge_from(const Counter& o) { v_ += o.v_; }

 private:
  std::uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  double value() const { return v_; }
  // Merge semantics for cross-partition aggregation: gauges are additive
  // snapshots (queue depths, populations), so merging sums them.
  void merge_from(const Gauge& o) { v_ += o.v_; }

 private:
  double v_ = 0;
};

// A gauge whose average is weighted by how long each value was held, in
// simulation time: mean() is the time integral divided by the observation
// span (e.g. mean queue depth, sleep duty cycle).  finalize() folds the
// tail segment up to the end of the run; it is safe to call repeatedly.
class TimeWeightedGauge {
 public:
  void set(sim::Time now, double v) {
    if (!started_) {
      started_ = true;
      start_ = last_t_ = now;
      last_v_ = min_ = max_ = v;
      return;
    }
    fold(now);
    last_v_ = v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  void finalize(sim::Time end) {
    if (started_) fold(end);
  }

  // Merge a finalized gauge from another partition running on the same
  // simulated clock: the integrals add, the observation span becomes the
  // union of both spans, and last() reports the later of the two tails.
  // Call finalize() on both sides first so no open segment is dropped.
  void merge_from(const TimeWeightedGauge& o) {
    if (!o.started_) return;
    if (!started_) {
      *this = o;
      return;
    }
    if (o.start_ < start_) start_ = o.start_;
    if (o.last_t_ > last_t_ || (o.last_t_ == last_t_ && o.last_v_ > last_v_))
      last_v_ = o.last_v_;
    if (o.last_t_ > last_t_) last_t_ = o.last_t_;
    integral_ += o.integral_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  bool started() const { return started_; }
  double last() const { return last_v_; }
  double min() const { return min_; }
  double max() const { return max_; }
  // Time-weighted mean over [first set, last fold].  A gauge that never
  // moved reports its held value.
  double mean() const {
    const double span = static_cast<double>((last_t_ - start_).count_ns());
    if (span <= 0) return last_v_;
    return integral_ / span;
  }

 private:
  void fold(sim::Time now) {
    if (now < last_t_) return;
    integral_ += last_v_ * static_cast<double>((now - last_t_).count_ns());
    last_t_ = now;
  }

  bool started_ = false;
  sim::Time start_;
  sim::Time last_t_;
  double last_v_ = 0;
  double integral_ = 0;  // value * nanoseconds
  double min_ = 0;
  double max_ = 0;
};

// Log2-bucketed histogram of non-negative integer samples (latencies in
// microseconds, burst lengths in bytes, ...).  Bucket 0 holds the value 0;
// bucket i >= 1 holds [2^(i-1), 2^i).
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  static int bucket_index(std::uint64_t v) {
    return v == 0 ? 0 : std::bit_width(v);
  }
  // Smallest value belonging to bucket i.
  static std::uint64_t bucket_floor(int i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  void observe(std::uint64_t v) {
    ++buckets_[static_cast<std::size_t>(bucket_index(v))];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  void merge_from(const Histogram& o) {
    if (o.count_ == 0) return;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
      buckets_[i] += o.buckets_[i];
    if (count_ == 0 || o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
    count_ += o.count_;
    sum_ += o.sum_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  // Resolve-or-create by name.  Pointers remain valid for the registry's
  // lifetime.
  Counter* counter(const std::string& name) { return &counters_[name]; }
  Gauge* gauge(const std::string& name) { return &gauges_[name]; }
  TimeWeightedGauge* time_gauge(const std::string& name) {
    return &time_gauges_[name];
  }
  Histogram* histogram(const std::string& name) { return &histograms_[name]; }

  // Lookup without creating; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const TimeWeightedGauge* find_time_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, TimeWeightedGauge>& time_gauges() const {
    return time_gauges_;
  }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  // Fold every time-weighted gauge's tail segment up to `end` (call once
  // the run's horizon is known, before exporting).
  void finalize(sim::Time end) {
    for (auto& [name, g] : time_gauges_) g.finalize(end);
  }

  // Fold another registry into this one, name by name: counters and
  // histograms add, gauges sum, time-weighted gauges take the union of
  // their observation spans.  Used at multi-cell teardown to aggregate the
  // per-cell registries into one fleet view; finalize() both registries
  // first.  Deterministic: std::map iteration is name order.
  void merge_from(const MetricsRegistry& o) {
    for (const auto& [name, c] : o.counters_) counters_[name].merge_from(c);
    for (const auto& [name, g] : o.gauges_) gauges_[name].merge_from(g);
    for (const auto& [name, g] : o.time_gauges_)
      time_gauges_[name].merge_from(g);
    for (const auto& [name, h] : o.histograms_)
      histograms_[name].merge_from(h);
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, TimeWeightedGauge> time_gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace pp::obs

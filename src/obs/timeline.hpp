// Timeline: typed spans and point events keyed to sim::Time.
//
// The simulation-side analogue of a structured tcpdump: the proxy records
// schedule broadcasts and bursts, clients record sleep/wake transitions,
// TCP records stalls, queues record drops.  Events carry a subject (an
// IPv4 address as a raw u32, 0 for "the system") and a free u64 value
// whose meaning depends on the kind (bytes, entry count, ...).
//
// Deliberately not dependent on pp_net: instrumented components in every
// layer include this header, and the lowest of them (the medium) sits in
// pp_net itself.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace pp::obs {

enum class EventKind : std::uint8_t {
  ScheduleBroadcast,  // value = schedule entry count
  Burst,              // span; subject = client, value = payload bytes burst
  EmptyBurstMarker,   // subject = client
  Drop,               // subject = client, value = dropped payload bytes
  Sleep,              // subject = client (radio entered sleep)
  Wake,               // subject = client (radio entered high power)
  TcpStall,           // subject = remote endpoint, value = RTO count
  ScheduleMissed,     // subject = client
  FaultStart,         // subject = client (0 = system-wide), value = FaultKind
  FaultEnd,           // matches a prior FaultStart (same subject + value)
  ScheduleRepeat,     // value = repeat index (1-based)
  Resync,             // subject = client, value = missed SRPs in the outage
  ClientJoin,         // subject = client (proxy admitted a join)
  ClientLeave,        // subject = client, value = dropped payload bytes
};

const char* to_string(EventKind k);
// Inverse of to_string; returns false for unknown names.
bool event_kind_from_string(std::string_view s, EventKind& out);

struct TimelineEvent {
  sim::Time at;
  sim::Duration dur;  // zero for point events
  EventKind kind = EventKind::ScheduleBroadcast;
  std::uint32_t subject = 0;  // IPv4 raw; 0 = no subject
  std::uint64_t value = 0;
};

// Streaming consumer of timeline events, fed synchronously from record()
// before capacity limits apply (so e.g. the invariant auditor in src/check
// keeps seeing events after the retained buffer fills up).
class TimelineSink {
 public:
  virtual ~TimelineSink() = default;
  virtual void on_event(const TimelineEvent& e) = 0;
};

class Timeline {
 public:
  void record(sim::Time at, EventKind kind, std::uint32_t subject = 0,
              std::uint64_t value = 0) {
    span(at, sim::Time::zero(), kind, subject, value);
  }
  void span(sim::Time at, sim::Duration dur, EventKind kind,
            std::uint32_t subject = 0, std::uint64_t value = 0) {
    const TimelineEvent ev{at, dur, kind, subject, value};
    if (sink_) sink_->on_event(ev);
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(ev);
  }

  // At most one sink; nullptr detaches.
  void set_sink(TimelineSink* sink) { sink_ = sink; }

  const std::vector<TimelineEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  // Events silently discarded after the capacity was hit.
  std::uint64_t dropped() const { return dropped_; }
  // Bound memory for long runs; existing events are kept.
  void set_capacity(std::size_t max_events) { capacity_ = max_events; }

 private:
  std::vector<TimelineEvent> events_;
  std::size_t capacity_ = 1u << 22;  // ~4M events ≈ 130 MB worst case
  std::uint64_t dropped_ = 0;
  TimelineSink* sink_ = nullptr;
};

}  // namespace pp::obs

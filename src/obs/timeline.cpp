#include "obs/timeline.hpp"

namespace pp::obs {

namespace {

struct KindName {
  EventKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {EventKind::ScheduleBroadcast, "schedule"},
    {EventKind::Burst, "burst"},
    {EventKind::EmptyBurstMarker, "empty_marker"},
    {EventKind::Drop, "drop"},
    {EventKind::Sleep, "sleep"},
    {EventKind::Wake, "wake"},
    {EventKind::TcpStall, "tcp_stall"},
    {EventKind::ScheduleMissed, "schedule_missed"},
    {EventKind::FaultStart, "fault_start"},
    {EventKind::FaultEnd, "fault_end"},
    {EventKind::ScheduleRepeat, "schedule_repeat"},
    {EventKind::Resync, "resync"},
    {EventKind::ClientJoin, "client_join"},
    {EventKind::ClientLeave, "client_leave"},
};

}  // namespace

const char* to_string(EventKind k) {
  for (const auto& kn : kKindNames)
    if (kn.kind == k) return kn.name;
  return "?";
}

bool event_kind_from_string(std::string_view s, EventKind& out) {
  for (const auto& kn : kKindNames) {
    if (s == kn.name) {
      out = kn.kind;
      return true;
    }
  }
  return false;
}

}  // namespace pp::obs

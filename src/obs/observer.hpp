// Observer: the registry + timeline pair a testbed hands to every
// instrumented component.  Held by shared_ptr so results can outlive the
// topology that produced them (ScenarioResult keeps the observer after the
// Testbed is torn down).
#pragma once

#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace pp::obs {

struct Observer {
  MetricsRegistry metrics;
  Timeline timeline;

  Hook hook() { return Hook{&metrics, &timeline}; }
};

}  // namespace pp::obs

// Zero-cost observability hook.
//
// Instrumented components hold an obs::Hook by value (two raw pointers)
// and wrap every instrumentation statement in PP_OBS(...).  Two layers of
// "off":
//
//  * Runtime: a default-constructed Hook points nowhere; call sites guard
//    on cached handles, so the disabled cost is one predictable branch.
//  * Compile time: building with -DPP_OBS_DISABLED turns PP_OBS(...) into
//    nothing and Hook into an empty type, removing even the branch.  The
//    two Hook variants live in distinct inline namespaces so object files
//    compiled in different modes never violate the ODR.
//
// bench/micro_obs_overhead.cpp measures all three states against the proxy
// burst hot loop.
#pragma once

#include <cstdint>

#if defined(PP_OBS_DISABLED)
#define PP_OBS_ENABLED 0
#else
#define PP_OBS_ENABLED 1
#endif

namespace pp::obs {

class MetricsRegistry;
class Timeline;
class Counter;
class Gauge;
class TimeWeightedGauge;
class Histogram;

#if PP_OBS_ENABLED

inline namespace obs_on {

class Hook {
 public:
  constexpr Hook() = default;
  constexpr Hook(MetricsRegistry* metrics, Timeline* timeline)
      : metrics_{metrics}, timeline_{timeline} {}

  constexpr explicit operator bool() const {
    return metrics_ != nullptr || timeline_ != nullptr;
  }
  constexpr MetricsRegistry* metrics() const { return metrics_; }
  constexpr Timeline* timeline() const { return timeline_; }

 private:
  MetricsRegistry* metrics_ = nullptr;
  Timeline* timeline_ = nullptr;
};

}  // namespace obs_on

#define PP_OBS(...) \
  do {              \
    __VA_ARGS__;    \
  } while (0)

#else  // PP_OBS_ENABLED

inline namespace obs_off {

class Hook {
 public:
  constexpr Hook() = default;
  constexpr Hook(MetricsRegistry*, Timeline*) {}

  constexpr explicit operator bool() const { return false; }
  constexpr MetricsRegistry* metrics() const { return nullptr; }
  constexpr Timeline* timeline() const { return nullptr; }
};

}  // namespace obs_off

#define PP_OBS(...) \
  do {              \
  } while (0)

#endif  // PP_OBS_ENABLED

}  // namespace pp::obs

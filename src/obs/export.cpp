#include "obs/export.hpp"

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string_view>

namespace pp::obs {

namespace {

// Shortest representation that round-trips a double exactly.
std::string fmt_double(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) return "0";
  return std::string{buf, end};
}

// -- line scanner ------------------------------------------------------------
// The exporter writes flat objects with unescaped string values, so a value
// for `"key":` is either a quoted run without quotes inside, or a run of
// number characters, or an array (scanned by the caller).

std::string_view raw_value(std::string_view line, std::string_view key) {
  // Built with append (not operator+): GCC 12 -O3 misfires -Wrestrict on
  // `"lit" + std::string{sv}` and the build is -Werror.
  std::string pat;
  pat.reserve(key.size() + 3);
  pat.push_back('"');
  pat.append(key);
  pat += "\":";
  const auto pos = line.find(pat);
  if (pos == std::string_view::npos) return {};
  return line.substr(pos + pat.size());
}

bool get_string(std::string_view line, std::string_view key,
                std::string& out) {
  auto rest = raw_value(line, key);
  if (rest.empty() || rest.front() != '"') return false;
  rest.remove_prefix(1);
  const auto end = rest.find('"');
  if (end == std::string_view::npos) return false;
  out.assign(rest.substr(0, end));
  return true;
}

bool get_u64(std::string_view line, std::string_view key, std::uint64_t& out) {
  const auto rest = raw_value(line, key);
  if (rest.empty()) return false;
  const auto [p, ec] = std::from_chars(rest.data(), rest.data() + rest.size(),
                                       out);
  (void)p;
  return ec == std::errc{};
}

bool get_i64(std::string_view line, std::string_view key, std::int64_t& out) {
  const auto rest = raw_value(line, key);
  if (rest.empty()) return false;
  const auto [p, ec] = std::from_chars(rest.data(), rest.data() + rest.size(),
                                       out);
  (void)p;
  return ec == std::errc{};
}

bool get_double(std::string_view line, std::string_view key, double& out) {
  const auto rest = raw_value(line, key);
  if (rest.empty()) return false;
  const auto [p, ec] = std::from_chars(rest.data(), rest.data() + rest.size(),
                                       out);
  (void)p;
  return ec == std::errc{};
}

// Parse "[[a,b],[c,d],...]" for histogram buckets.
bool get_pairs(std::string_view line, std::string_view key,
               std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) {
  auto rest = raw_value(line, key);
  if (rest.empty() || rest.front() != '[') return false;
  rest.remove_prefix(1);
  while (!rest.empty() && rest.front() == '[') {
    rest.remove_prefix(1);
    std::uint64_t a = 0, b = 0;
    auto r1 = std::from_chars(rest.data(), rest.data() + rest.size(), a);
    if (r1.ec != std::errc{} || *r1.ptr != ',') return false;
    const char* q = r1.ptr + 1;
    auto r2 = std::from_chars(q, rest.data() + rest.size(), b);
    if (r2.ec != std::errc{} || *r2.ptr != ']') return false;
    out.emplace_back(a, b);
    rest.remove_prefix(static_cast<std::size_t>(r2.ptr + 1 - rest.data()));
    if (!rest.empty() && rest.front() == ',') rest.remove_prefix(1);
  }
  return !rest.empty() && rest.front() == ']';
}

bool parse_subject(const std::string& s, std::uint32_t& out) {
  if (s == "-") {
    out = 0;
    return true;
  }
  unsigned a, b, c, d;
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u", &a, &b, &c, &d) != 4) return false;
  if (a > 255 || b > 255 || c > 255 || d > 255) return false;
  out = (a << 24) | (b << 16) | (c << 8) | d;
  return true;
}

}  // namespace

std::string subject_str(std::uint32_t raw) {
  if (raw == 0) return "-";
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", raw >> 24, (raw >> 16) & 0xff,
                (raw >> 8) & 0xff, raw & 0xff);
  return buf;
}

const CounterSample* Report::find_counter(const std::string& name) const {
  for (const auto& c : counters)
    if (c.name == name) return &c;
  return nullptr;
}

const TimeGaugeSample* Report::find_time_gauge(const std::string& name) const {
  for (const auto& g : time_gauges)
    if (g.name == name) return &g;
  return nullptr;
}

const HistogramSample* Report::find_histogram(const std::string& name) const {
  for (const auto& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

Report snapshot(const MetricsRegistry& reg, const Timeline* timeline) {
  Report r;
  for (const auto& [name, c] : reg.counters())
    r.counters.push_back({name, c.value()});
  for (const auto& [name, g] : reg.gauges()) r.gauges.push_back({name, g.value()});
  for (const auto& [name, g] : reg.time_gauges())
    r.time_gauges.push_back({name, g.mean(), g.min(), g.max(), g.last()});
  for (const auto& [name, h] : reg.histograms()) {
    HistogramSample s;
    s.name = name;
    s.count = h.count();
    s.sum = h.sum();
    s.min = h.min();
    s.max = h.max();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const auto n = h.buckets()[static_cast<std::size_t>(i)];
      if (n > 0) s.buckets.emplace_back(Histogram::bucket_floor(i), n);
    }
    r.histograms.push_back(std::move(s));
  }
  if (timeline) r.events = timeline->events();
  return r;
}

void write_jsonl(std::ostream& os, const Report& report) {
  for (const auto& c : report.counters) {
    os << "{\"type\":\"counter\",\"name\":\"" << c.name << "\",\"value\":"
       << c.value << "}\n";
  }
  for (const auto& g : report.gauges) {
    os << "{\"type\":\"gauge\",\"name\":\"" << g.name << "\",\"value\":"
       << fmt_double(g.value) << "}\n";
  }
  for (const auto& g : report.time_gauges) {
    os << "{\"type\":\"time_gauge\",\"name\":\"" << g.name << "\",\"mean\":"
       << fmt_double(g.mean) << ",\"min\":" << fmt_double(g.min)
       << ",\"max\":" << fmt_double(g.max) << ",\"last\":"
       << fmt_double(g.last) << "}\n";
  }
  for (const auto& h : report.histograms) {
    os << "{\"type\":\"histogram\",\"name\":\"" << h.name << "\",\"count\":"
       << h.count << ",\"sum\":" << h.sum << ",\"min\":" << h.min
       << ",\"max\":" << h.max << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) os << ',';
      os << '[' << h.buckets[i].first << ',' << h.buckets[i].second << ']';
    }
    os << "]}\n";
  }
  for (const auto& e : report.events) {
    os << "{\"type\":\"event\",\"t_ns\":" << e.at.count_ns() << ",\"dur_ns\":"
       << e.dur.count_ns() << ",\"kind\":\"" << to_string(e.kind)
       << "\",\"subject\":\"" << subject_str(e.subject) << "\",\"value\":"
       << e.value << "}\n";
  }
}

Report read_jsonl(std::istream& is) {
  Report r;
  std::string line;
  std::size_t lineno = 0;
  auto fail = [&](const char* what) {
    throw std::runtime_error("obs::read_jsonl line " + std::to_string(lineno) +
                             ": " + what);
  };
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string type;
    if (!get_string(line, "type", type)) fail("missing type");
    if (type == "counter") {
      CounterSample c;
      if (!get_string(line, "name", c.name) ||
          !get_u64(line, "value", c.value))
        fail("bad counter");
      r.counters.push_back(std::move(c));
    } else if (type == "gauge") {
      GaugeSample g;
      if (!get_string(line, "name", g.name) ||
          !get_double(line, "value", g.value))
        fail("bad gauge");
      r.gauges.push_back(std::move(g));
    } else if (type == "time_gauge") {
      TimeGaugeSample g;
      if (!get_string(line, "name", g.name) ||
          !get_double(line, "mean", g.mean) ||
          !get_double(line, "min", g.min) ||
          !get_double(line, "max", g.max) ||
          !get_double(line, "last", g.last))
        fail("bad time_gauge");
      r.time_gauges.push_back(std::move(g));
    } else if (type == "histogram") {
      HistogramSample h;
      if (!get_string(line, "name", h.name) ||
          !get_u64(line, "count", h.count) || !get_u64(line, "sum", h.sum) ||
          !get_u64(line, "min", h.min) || !get_u64(line, "max", h.max) ||
          !get_pairs(line, "buckets", h.buckets))
        fail("bad histogram");
      r.histograms.push_back(std::move(h));
    } else if (type == "event") {
      TimelineEvent e;
      // pp-lint: allow(naked-duration): wire-format field before parsing
      std::int64_t t_ns = 0, dur_ns = 0;
      std::string kind, subject;
      if (!get_i64(line, "t_ns", t_ns) || !get_i64(line, "dur_ns", dur_ns) ||
          !get_string(line, "kind", kind) ||
          !get_string(line, "subject", subject) ||
          !get_u64(line, "value", e.value))
        fail("bad event");
      if (!event_kind_from_string(kind, e.kind)) fail("unknown event kind");
      if (!parse_subject(subject, e.subject)) fail("bad event subject");
      e.at = sim::Time::ns(t_ns);
      e.dur = sim::Time::ns(dur_ns);
      r.events.push_back(e);
    } else {
      fail("unknown type");
    }
  }
  return r;
}

void write_metrics_csv(std::ostream& os, const Report& report) {
  os << "type,name,value,mean,min,max,last,count,sum\n";
  for (const auto& c : report.counters)
    os << "counter," << c.name << ',' << c.value << ",,,,,,\n";
  for (const auto& g : report.gauges)
    os << "gauge," << g.name << ',' << fmt_double(g.value) << ",,,,,,\n";
  for (const auto& g : report.time_gauges)
    os << "time_gauge," << g.name << ",," << fmt_double(g.mean) << ','
       << fmt_double(g.min) << ',' << fmt_double(g.max) << ','
       << fmt_double(g.last) << ",,\n";
  for (const auto& h : report.histograms)
    os << "histogram," << h.name << ",,," << h.min << ',' << h.max << ",,"
       << h.count << ',' << h.sum << "\n";
}

void write_timeline_csv(std::ostream& os, const Report& report) {
  os << "t_ns,dur_ns,kind,subject,value\n";
  for (const auto& e : report.events)
    os << e.at.count_ns() << ',' << e.dur.count_ns() << ',' << to_string(e.kind)
       << ',' << subject_str(e.subject) << ',' << e.value << "\n";
}

}  // namespace pp::obs

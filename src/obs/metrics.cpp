#include "obs/metrics.hpp"

namespace pp::obs {

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const TimeWeightedGauge* MetricsRegistry::find_time_gauge(
    const std::string& name) const {
  auto it = time_gauges_.find(name);
  return it == time_gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

}  // namespace pp::obs

// Quickstart: one mobile client streams a 56 kbps video through the
// transparent proxy with a 500 ms burst interval, and we print how much
// WNIC energy the schedule saved versus a naive always-on client.
#include <cstdio>

#include "exp/builder.hpp"

int main() {
  using namespace pp;

  // One client, 56K video (fidelity index 0); the builder validates the
  // configuration and returns the immutable ScenarioConfig.
  const exp::ScenarioConfig cfg = exp::ScenarioBuilder{}
                                      .video(1, 0)
                                      .policy(exp::IntervalPolicy::Fixed500)
                                      .seed(42)
                                      .duration_s(130.0)
                                      .build();

  std::printf("powerproxy quickstart: 1 client, 56 kbps video, 500 ms bursts\n");
  const exp::ScenarioResult res = exp::run_scenario(cfg);

  for (const auto& c : res.clients) {
    std::printf(
        "client %-12s role=%-5s saved=%5.1f%%  energy=%8.0f mJ  "
        "naive=%8.0f mJ  loss=%4.2f%%  sched(rx/miss)=%llu/%llu\n",
        c.ip.str().c_str(), exp::role_name(c.role).c_str(), c.saved_pct,
        c.energy_mj, c.naive_mj, c.loss_pct,
        static_cast<unsigned long long>(c.schedules_received),
        static_cast<unsigned long long>(c.schedules_missed));
    std::printf(
        "  media: %llu packets, %llu bytes, app-loss=%.2f%%\n",
        static_cast<unsigned long long>(c.packets_received),
        static_cast<unsigned long long>(c.bytes_received), c.app_loss_pct);
  }
  std::printf("proxy: %llu schedules, %llu bursts, %llu UDP bytes burst\n",
              static_cast<unsigned long long>(res.proxy_stats.schedules_sent),
              static_cast<unsigned long long>(res.proxy_stats.bursts_opened),
              static_cast<unsigned long long>(res.proxy_stats.udp_bytes_burst));
  return 0;
}

// Mixed multimedia + bulk traffic: video viewers, web browsers, and an ftp
// download sharing one access point — the multi-client scenario that
// motivates a *global* schedule (Section 1: data for different clients
// arrives at the access point simultaneously, so clients must agree on who
// wakes when).
//
// Usage: mixed_traffic [interval_ms|var]
#include <cstdio>
#include <cstring>
#include <string>

#include "exp/builder.hpp"

int main(int argc, char** argv) {
  using namespace pp;

  const std::string interval = argc > 1 ? argv[1] : "500";
  exp::IntervalPolicy policy = exp::IntervalPolicy::Fixed500;
  if (interval == "var") {
    policy = exp::IntervalPolicy::Variable;
  } else if (interval == "100") {
    policy = exp::IntervalPolicy::Fixed100;
  }
  // 4 video clients of mixed fidelity, 3 web browsers, 1 ftp download.
  const exp::ScenarioConfig cfg =
      exp::ScenarioBuilder{}
          .roles({0, 1, 2, 3, exp::kRoleWeb, exp::kRoleWeb, exp::kRoleWeb,
                  exp::kRoleFtp})
          .policy(policy)
          .seed(9)
          .duration_s(140.0)
          .ftp_bytes(2'000'000)
          .build();

  std::printf("mixed traffic (4 video + 3 web + 1 ftp), %s interval\n",
              exp::policy_name(cfg.policy).c_str());
  const auto res = exp::run_scenario(cfg);

  std::printf("\n%-14s %-9s %8s %8s   %s\n", "client", "role", "saved%",
              "loss%", "application detail");
  for (const auto& c : res.clients) {
    std::printf("%-14s %-9s %8.1f %8.2f   ", c.ip.str().c_str(),
                exp::role_name(c.role).c_str(), c.saved_pct, c.loss_pct);
    if (exp::is_video_role(c.role)) {
      std::printf("media %llu bytes, app-loss %.2f%%\n",
                  static_cast<unsigned long long>(c.app_bytes),
                  c.app_loss_pct);
    } else if (c.role == exp::kRoleWeb) {
      std::printf("%d pages, %.0f ms/page\n", c.pages_completed,
                  c.page_time_ms);
    } else {
      std::printf("ftp %llu bytes in %.1f s\n",
                  static_cast<unsigned long long>(c.app_bytes),
                  c.ftp_seconds);
    }
  }
  const auto v = exp::summarize_video(res.clients);
  const auto t = exp::summarize_tcp(res.clients);
  std::printf("\nvideo clients: avg %.1f%% saved;  TCP clients: avg %.1f%% "
              "saved\n", v.avg, t.avg);
  return 0;
}

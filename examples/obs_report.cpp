// Observability report: run a scenario with metrics + timeline attached,
// export everything to JSONL/CSV, then read the JSONL back and render the
// run — top-line metrics, per-client sleep/wake duty cycles, the
// burst-duration histogram, and an ASCII burst/sleep timeline — proving
// the export round trip carries everything an external tool needs.
//
// Usage: obs_report [duration_s] [out_prefix]
//   Writes <out_prefix>.jsonl, <out_prefix>.metrics.csv, and
//   <out_prefix>.timeline.csv (default prefix: obs_report).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/builder.hpp"
#include "obs/export.hpp"

namespace {

using namespace pp;

// Per-client view assembled from timeline events alone.
struct ClientTimeline {
  double sleep_s = 0;         // total time with the radio off
  int sleeps = 0;
  int bursts = 0;
  std::uint64_t burst_bytes = 0;
  int drops = 0;
  int missed_schedules = 0;
  sim::Time last_sleep;
  bool asleep = false;
};

void render_timeline_strip(const obs::Report& rep, sim::Time horizon) {
  // One row per client; 100 columns spanning the run.  '#' = burst granted,
  // '.' = asleep, ' ' = awake/idle, '!' = drop.
  constexpr int kCols = 100;
  std::map<std::uint32_t, std::string> rows;
  auto col = [&](sim::Time t) {
    const double frac = t.to_seconds() / horizon.to_seconds();
    return std::clamp(static_cast<int>(frac * kCols), 0, kCols - 1);
  };
  auto row = [&](std::uint32_t subject) -> std::string& {
    auto it = rows.find(subject);
    if (it == rows.end()) {
      it = rows.emplace(subject, std::string(kCols, ' ')).first;
    }
    return it->second;
  };
  // Pass 1: sleep intervals as '.' runs.
  std::map<std::uint32_t, sim::Time> sleep_start;
  for (const auto& e : rep.events) {
    if (e.kind == obs::EventKind::Sleep) {
      sleep_start[e.subject] = e.at;
    } else if (e.kind == obs::EventKind::Wake) {
      auto it = sleep_start.find(e.subject);
      if (it == sleep_start.end()) continue;
      auto& r = row(e.subject);
      for (int c = col(it->second); c <= col(e.at); ++c) r[c] = '.';
      sleep_start.erase(it);
    }
  }
  for (const auto& [subject, start] : sleep_start) {
    auto& r = row(subject);
    for (int c = col(start); c < kCols; ++c) r[c] = '.';
  }
  // Pass 2: bursts and drops on top.
  for (const auto& e : rep.events) {
    if (e.kind == obs::EventKind::Burst) {
      auto& r = row(e.subject);
      for (int c = col(e.at); c <= col(e.at + e.dur); ++c) r[c] = '#';
    } else if (e.kind == obs::EventKind::Drop && e.subject != 0) {
      row(e.subject)[col(e.at)] = '!';
    }
  }
  std::printf("\ntimeline (0 .. %.0f s;  '#'=burst  '.'=asleep  '!'=drop)\n",
              horizon.to_seconds());
  for (const auto& [subject, r] : rows) {
    std::printf("  %-14s |%s|\n", obs::subject_str(subject).c_str(),
                r.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double duration_s = argc > 1 ? std::atof(argv[1]) : 60.0;
  const std::string prefix = argc > 2 ? argv[2] : "obs_report";

  exp::ScenarioConfig cfg;
  try {
    cfg = exp::ScenarioBuilder{}
              .roles({0, 2, exp::kRoleWeb, exp::kRoleFtp})
              .policy(exp::IntervalPolicy::Fixed500)
              .seed(11)
              .duration_s(duration_s)
              .ftp_bytes(1'000'000)
              .keep_obs()
              .build();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("running %.0f s mixed scenario (2 video + 1 web + 1 ftp)...\n",
              duration_s);
  const auto res = exp::run_scenario(cfg);
  if (!res.obs) {
    std::fprintf(stderr,
                 "no observer attached (built with PP_OBS_DISABLED?)\n");
    return 1;
  }

  // Export, then work from the re-imported report only.
  const obs::Report live = obs::snapshot(res.obs->metrics, &res.obs->timeline);
  {
    std::ofstream jf{prefix + ".jsonl"};
    obs::write_jsonl(jf, live);
    std::ofstream mf{prefix + ".metrics.csv"};
    obs::write_metrics_csv(mf, live);
    std::ofstream tf{prefix + ".timeline.csv"};
    obs::write_timeline_csv(tf, live);
    if (!jf || !mf || !tf) {
      std::fprintf(stderr, "error: cannot write output files at prefix %s\n",
                   prefix.c_str());
      return 1;
    }
  }
  std::ifstream in{prefix + ".jsonl"};
  const obs::Report rep = obs::read_jsonl(in);
  std::printf("wrote %s.jsonl / %s.metrics.csv / %s.timeline.csv\n",
              prefix.c_str(), prefix.c_str(), prefix.c_str());

  // -- Top-line metrics ------------------------------------------------------------
  auto counter = [&](const char* name) -> std::uint64_t {
    const auto* c = rep.find_counter(name);
    return c ? c->value : 0;
  };
  std::printf("\ntop-line metrics\n");
  std::printf("  schedule broadcasts   %10llu\n",
              static_cast<unsigned long long>(counter("proxy.schedules_sent")));
  std::printf("  packets queued        %10llu\n",
              static_cast<unsigned long long>(counter("proxy.queued_packets")));
  std::printf("  proxy queue drops     %10llu\n",
              static_cast<unsigned long long>(counter("proxy.queue_drops")));
  std::printf("  AP downlink drops     %10llu\n",
              static_cast<unsigned long long>(counter("ap.downlink_dropped")));
  std::printf("  empty burst markers   %10llu\n",
              static_cast<unsigned long long>(
                  counter("proxy.empty_burst_markers")));
  std::printf("  frames on air         %10llu  (missed by sleepers: %llu)\n",
              static_cast<unsigned long long>(counter("net.frames_sent")),
              static_cast<unsigned long long>(counter("net.frames_missed")));
  std::printf("  TCP retransmissions   %10llu  (timeouts: %llu, fast: %llu)\n",
              static_cast<unsigned long long>(counter("tcp.retransmissions")),
              static_cast<unsigned long long>(counter("tcp.timeouts")),
              static_cast<unsigned long long>(counter("tcp.fast_retransmits")));
  if (const auto* q = rep.find_time_gauge("proxy.queue_depth_bytes")) {
    std::printf("  proxy queue depth      mean %.0f B, max %.0f B\n", q->mean,
                q->max);
  }
  if (const auto* b = rep.find_time_gauge("ap.backlog_bytes")) {
    std::printf("  AP backlog             mean %.0f B, max %.0f B\n", b->mean,
                b->max);
  }

  // -- Per-client duty cycle -------------------------------------------------------
  std::printf("\nper-client radio duty cycle (from time-weighted gauges)\n");
  std::printf("  %-14s %-9s %8s %10s %8s\n", "client", "role", "awake%",
              "sleeps", "missed");
  std::map<std::uint32_t, ClientTimeline> tls;
  for (const auto& e : rep.events) {
    auto& t = tls[e.subject];
    switch (e.kind) {
      case obs::EventKind::Sleep:
        ++t.sleeps;
        t.asleep = true;
        t.last_sleep = e.at;
        break;
      case obs::EventKind::Wake:
        if (t.asleep) t.sleep_s += (e.at - t.last_sleep).to_seconds();
        t.asleep = false;
        break;
      case obs::EventKind::Burst:
        ++t.bursts;
        t.burst_bytes += e.value;
        break;
      case obs::EventKind::Drop:
        ++t.drops;
        break;
      case obs::EventKind::ScheduleMissed:
        ++t.missed_schedules;
        break;
      default:
        break;
    }
  }
  for (std::size_t i = 0; i < res.clients.size(); ++i) {
    const auto& c = res.clients[i];
    const auto* awake =
        rep.find_time_gauge("client." + c.ip.str() + ".awake");
    const auto& t = tls[c.ip.raw()];
    std::printf("  %-14s %-9s %7.1f%% %10d %8d\n", c.ip.str().c_str(),
                exp::role_name(c.role).c_str(),
                awake ? 100.0 * awake->mean : 100.0, t.sleeps,
                t.missed_schedules);
  }

  // -- Burst-duration histogram ----------------------------------------------------
  if (const auto* h = rep.find_histogram("proxy.burst_duration_us")) {
    std::printf("\nburst durations (us, log2 buckets; %llu bursts, mean %.0f)\n",
                static_cast<unsigned long long>(h->count),
                h->count ? static_cast<double>(h->sum) /
                               static_cast<double>(h->count)
                         : 0.0);
    std::uint64_t peak = 1;
    for (const auto& [floor, n] : h->buckets) peak = std::max(peak, n);
    for (const auto& [floor, n] : h->buckets) {
      const int bar = static_cast<int>(50 * n / peak);
      std::printf("  >=%9llu %6llu %s\n",
                  static_cast<unsigned long long>(floor),
                  static_cast<unsigned long long>(n),
                  std::string(static_cast<std::size_t>(bar), '*').c_str());
    }
  }

  render_timeline_strip(rep, res.horizon);
  return 0;
}

// Multi-client video streaming through the transparent proxy — the
// workload the paper's introduction motivates.
//
// Usage: video_streaming [num_clients] [nominal_kbps] [interval_ms|var]
//   e.g. video_streaming 10 256 500
//        video_streaming 4 512 var
//
// Streams the 1:59 trailer to every client, bursts it on the chosen
// schedule, and reports per-client energy, loss, and stream adaptation.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "exp/builder.hpp"
#include "workload/video.hpp"

int main(int argc, char** argv) {
  using namespace pp;

  const int clients = argc > 1 ? std::atoi(argv[1]) : 10;
  const int nominal = argc > 2 ? std::atoi(argv[2]) : 256;
  const std::string interval = argc > 3 ? argv[3] : "500";

  exp::IntervalPolicy policy = exp::IntervalPolicy::Fixed500;
  if (interval == "var") {
    policy = exp::IntervalPolicy::Variable;
  } else if (interval == "100") {
    policy = exp::IntervalPolicy::Fixed100;
  }
  exp::ScenarioConfig cfg;
  try {
    cfg = exp::ScenarioBuilder{}
              .video(clients, workload::fidelity_index(nominal))
              .policy(policy)
              .seed(1)
              .duration_s(140.0)
              .build();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("streaming %dx %dK video, %s burst interval\n", clients,
              nominal, exp::policy_name(cfg.policy).c_str());
  const auto res = exp::run_scenario(cfg);

  std::printf("\n%-14s %8s %10s %10s %8s %10s %10s\n", "client", "saved%",
              "energy(J)", "naive(J)", "loss%", "stream", "app-loss%");
  for (const auto& c : res.clients) {
    std::printf("%-14s %8.1f %10.1f %10.1f %8.2f %9dK %10.2f\n",
                c.ip.str().c_str(), c.saved_pct, c.energy_mj / 1000.0,
                c.naive_mj / 1000.0, c.loss_pct,
                c.video_fidelity_final >= 0
                    ? workload::kFidelities[c.video_fidelity_final].nominal_kbps
                    : nominal,
                c.app_loss_pct);
  }
  const auto s = exp::summarize_all(res.clients);
  std::printf("\nsummary: avg=%.1f%% min=%.1f%% max=%.1f%% of naive energy "
              "saved\n", s.avg, s.min, s.max);
  std::printf("proxy: %llu schedules, %llu bursts, %llu queue drops\n",
              static_cast<unsigned long long>(res.proxy_stats.schedules_sent),
              static_cast<unsigned long long>(res.proxy_stats.bursts_opened),
              static_cast<unsigned long long>(res.proxy_stats.queue_drops));
  return 0;
}

// Capture a wireless trace with the monitoring station, save it, reload
// it, and analyze a client postmortem under several delay-compensation
// configurations — the paper's offline methodology as a tool.
//
// Usage: trace_inspector [output.pptrace]
#include <cstdio>
#include <iostream>
#include <string>

#include "exp/builder.hpp"
#include "trace/io.hpp"
#include "trace/postmortem.hpp"

int main(int argc, char** argv) {
  using namespace pp;
  const std::string path = argc > 1 ? argv[1] : "/tmp/powerproxy.pptrace";

  const exp::ScenarioConfig cfg = exp::ScenarioBuilder{}
                                      .roles({0, 2, exp::kRoleWeb})
                                      .policy(exp::IntervalPolicy::Fixed500)
                                      .seed(5)
                                      .duration_s(60.0)
                                      .keep_trace()
                                      .build();

  std::printf("running a 60 s mixed scenario and capturing the trace...\n");
  const auto res = exp::run_scenario(cfg);
  trace::save_trace(path, res.trace);
  std::printf("monitoring station heard %zu frames -> %s\n",
              res.trace.size(), path.c_str());

  const auto trace = trace::load_trace(path);
  std::printf("reloaded %zu frames; first ten:\n", trace.size());
  trace::TraceBuffer head{trace.begin(),
                          trace.begin() + std::min<std::size_t>(10, trace.size())};
  trace::dump_trace(std::cout, head);
  std::printf("\npostmortem: client %s under different early-transition "
              "amounts\n", res.clients[0].ip.str().c_str());
  trace::PostmortemAnalyzer analyzer{trace};
  std::printf("%8s %10s %12s %10s\n", "early", "saved%", "missed-pkt%",
              "sched-miss");
  for (int early : {0, 2, 6, 10}) {
    client::DaemonConfig dc;
    dc.comp.early = sim::Time::ms(early);
    const auto rep = analyzer.analyze(res.clients[0].ip, dc, res.horizon);
    std::printf("%6dms %10.1f %12.2f %10llu\n", early,
                rep.saved_fraction * 100.0, rep.loss_fraction * 100.0,
                static_cast<unsigned long long>(rep.schedules_missed));
  }
  return 0;
}

// Degradation report: run a deliberately hostile scenario — Gilbert-Elliott
// bursty corruption plus one window of every typed fault (deep fade, AP
// stall, link flap, proxy pause) — with the graceful-degradation hardening
// on (schedule k-repeat, client miss escalation), then render what the
// fault layer did and what it cost: the fault windows recovered, per-client
// outage/resync accounting, and a timeline strip with the faults overlaid.
//
// Usage: degradation_report [duration_s]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/battery.hpp"
#include "exp/builder.hpp"
#include "fault/spec.hpp"
#include "obs/export.hpp"

namespace {

using namespace pp;

void render_strip(const std::vector<obs::TimelineEvent>& events,
                  sim::Time horizon) {
  // One row per client; '.' = asleep, 'x' = missed schedule, 'R' = resync,
  // 'F' = deep-fade window.  System-wide faults get their own row.
  constexpr int kCols = 100;
  std::map<std::uint32_t, std::string> rows;
  auto col = [&](sim::Time t) {
    const double frac = t.to_seconds() / horizon.to_seconds();
    return std::clamp(static_cast<int>(frac * kCols), 0, kCols - 1);
  };
  auto row = [&](std::uint32_t subject) -> std::string& {
    auto it = rows.find(subject);
    if (it == rows.end())
      it = rows.emplace(subject, std::string(kCols, ' ')).first;
    return it->second;
  };
  std::map<std::uint32_t, sim::Time> sleep_start;
  std::map<std::uint64_t, sim::Time> fault_start;  // (value<<32)|subject
  for (const auto& e : events) {
    switch (e.kind) {
      case obs::EventKind::Sleep:
        sleep_start[e.subject] = e.at;
        break;
      case obs::EventKind::Wake: {
        auto it = sleep_start.find(e.subject);
        if (it == sleep_start.end()) break;
        auto& r = row(e.subject);
        for (int c = col(it->second); c <= col(e.at); ++c) r[c] = '.';
        sleep_start.erase(it);
        break;
      }
      case obs::EventKind::FaultStart:
        fault_start[(e.value << 32) | e.subject] = e.at;
        break;
      case obs::EventKind::FaultEnd: {
        auto it = fault_start.find((e.value << 32) | e.subject);
        if (it == fault_start.end()) break;
        const char mark =
            fault::to_string(static_cast<fault::FaultKind>(e.value))[0];
        auto& r = row(e.subject);
        for (int c = col(it->second); c <= col(e.at); ++c)
          r[c] = static_cast<char>(std::toupper(mark));
        fault_start.erase(it);
        break;
      }
      default:
        break;
    }
  }
  // Point markers on top of the sleep/fault runs.
  for (const auto& e : events) {
    if (e.kind == obs::EventKind::ScheduleMissed) {
      row(e.subject)[col(e.at)] = 'x';
    } else if (e.kind == obs::EventKind::Resync) {
      row(e.subject)[col(e.at)] = 'R';
    }
  }
  std::printf(
      "\ntimeline (0 .. %.0f s;  '.'=asleep  'x'=miss  'R'=resync\n"
      "               'D'=deep fade  'A'=AP stall  'L'=link flap  "
      "'P'=proxy pause)\n",
      horizon.to_seconds());
  for (const auto& [subject, r] : rows) {
    std::printf("  %-14s |%s|\n", obs::subject_str(subject).c_str(),
                r.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double duration_s = argc > 1 ? std::atof(argv[1]) : 40.0;

  // The hostile everything-at-once preset: GE corruption plus one window
  // of every typed fault, hardening (k=2 repeats, escalation) on.  The
  // scenario keeps its observer, so the sweep engine always runs it live
  // and hands back the full result, timeline included.
  auto opts = pp::bench::parse_args(argc, argv);
  opts.progress = false;
  std::vector<exp::sweep::Item> items;
  try {
    items.push_back(
        {"degradation", exp::ScenarioBuilder::degradation(duration_s).build()});
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("running %.0f s faulted scenario (3 video + 1 web, k=2 "
              "repeats, escalation on)...\n",
              duration_s);
  const auto sweep = pp::bench::run_battery(items, opts);
  const auto& res = *sweep.outcomes[0].live;
  if (!res.obs) {
    std::fprintf(stderr,
                 "no observer attached (built with PP_OBS_DISABLED?)\n");
    return 1;
  }
  const obs::Report rep = obs::snapshot(res.obs->metrics, &res.obs->timeline);

  // -- Fault windows ---------------------------------------------------------------
  std::printf("\nfault windows (all must recover before the horizon)\n");
  std::printf("  %-12s %-14s %10s %10s\n", "kind", "subject", "start-s",
              "end-s");
  std::map<std::uint64_t, sim::Time> open;
  for (const auto& e : res.obs->timeline.events()) {
    const std::uint64_t key = (e.value << 32) | e.subject;
    if (e.kind == obs::EventKind::FaultStart) {
      open[key] = e.at;
    } else if (e.kind == obs::EventKind::FaultEnd) {
      std::printf("  %-12s %-14s %10.2f %10.2f\n",
                  fault::to_string(static_cast<fault::FaultKind>(e.value)),
                  obs::subject_str(e.subject).c_str(), open[key].to_seconds(),
                  e.at.to_seconds());
      open.erase(key);
    }
  }
  std::printf("  activated=%llu recovered=%llu ge_bad_entries=%llu "
              "(ge=%llu fade=%llu losses)\n",
              static_cast<unsigned long long>(res.fault_stats.windows_activated),
              static_cast<unsigned long long>(res.fault_stats.windows_recovered),
              static_cast<unsigned long long>(res.fault_stats.ge_bad_entries),
              static_cast<unsigned long long>(res.fault_stats.ge_losses),
              static_cast<unsigned long long>(res.fault_stats.fade_losses));

  // -- Per-client degradation ------------------------------------------------------
  std::printf("\nper-client degradation\n");
  std::printf("  %-14s %-9s %6s %6s %6s %6s %6s %7s %7s\n", "client", "role",
              "recvd", "missed", "esc", "resync", "dedup", "loss%", "saved%");
  for (const auto& c : res.clients) {
    std::printf("  %-14s %-9s %6llu %6llu %6llu %6llu %6llu %7.2f %7.1f\n",
                c.ip.str().c_str(), exp::role_name(c.role).c_str(),
                static_cast<unsigned long long>(c.schedules_received),
                static_cast<unsigned long long>(c.schedules_missed),
                static_cast<unsigned long long>(c.escalated_sleeps),
                static_cast<unsigned long long>(c.resyncs),
                static_cast<unsigned long long>(c.repeats_deduped),
                c.loss_pct, c.saved_pct);
  }

  // -- Recovery metrics ------------------------------------------------------------
  std::printf("\nrecovery metrics\n");
  std::printf("  schedule repeats sent %10llu (pauses: %llu)\n",
              static_cast<unsigned long long>(
                  res.proxy_stats.schedule_repeats_sent),
              static_cast<unsigned long long>(res.proxy_stats.pauses));
  if (const auto* h = rep.find_histogram("client.outage_us")) {
    std::printf("  outages               %10llu, mean %.0f ms to resync\n",
                static_cast<unsigned long long>(h->count),
                h->count ? static_cast<double>(h->sum) /
                               static_cast<double>(h->count) / 1000.0
                         : 0.0);
  }

  render_strip(res.obs->timeline.events(), res.horizon);
  return 0;
}

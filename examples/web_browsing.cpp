// Web browsing through the transparent proxy: several clients fetch
// scripted page sequences (a main document plus embedded objects, each on
// its own TCP connection), and the proxy's spliced double connections keep
// the servers' windows open while clients sleep between bursts.
//
// Usage: web_browsing [num_clients] [pages]
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "exp/builder.hpp"

int main(int argc, char** argv) {
  using namespace pp;

  const int clients = argc > 1 ? std::atoi(argv[1]) : 5;
  const int pages = argc > 2 ? std::atoi(argv[2]) : 15;

  exp::ScenarioConfig cfg;
  try {
    cfg = exp::ScenarioBuilder{}
              .web(clients)
              .policy(exp::IntervalPolicy::Fixed500)
              .web_pages(pages)
              .seed(3)
              .duration_s(150.0)
              .build();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("%d clients browsing %d pages each, 500 ms burst interval\n",
              clients, pages);
  const auto res = exp::run_scenario(cfg);

  std::printf("\n%-14s %8s %8s %8s %14s %12s\n", "client", "saved%", "loss%",
              "pages", "page-time(ms)", "bytes");
  for (const auto& c : res.clients) {
    std::printf("%-14s %8.1f %8.2f %8d %14.0f %12llu\n", c.ip.str().c_str(),
                c.saved_pct, c.loss_pct, c.pages_completed, c.page_time_ms,
                static_cast<unsigned long long>(c.app_bytes));
  }
  const auto s = exp::summarize_all(res.clients);
  std::printf(
      "\nsummary: avg=%.1f%% saved; each page costs one or two burst "
      "intervals of latency\nin exchange for sleeping through everyone "
      "else's traffic.\n",
      s.avg);
  return 0;
}

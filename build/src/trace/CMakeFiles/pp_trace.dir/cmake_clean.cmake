file(REMOVE_RECURSE
  "CMakeFiles/pp_trace.dir/io.cpp.o"
  "CMakeFiles/pp_trace.dir/io.cpp.o.d"
  "CMakeFiles/pp_trace.dir/monitor.cpp.o"
  "CMakeFiles/pp_trace.dir/monitor.cpp.o.d"
  "CMakeFiles/pp_trace.dir/postmortem.cpp.o"
  "CMakeFiles/pp_trace.dir/postmortem.cpp.o.d"
  "libpp_trace.a"
  "libpp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/pp_sim.dir/event_queue.cpp.o"
  "CMakeFiles/pp_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/pp_sim.dir/rng.cpp.o"
  "CMakeFiles/pp_sim.dir/rng.cpp.o.d"
  "CMakeFiles/pp_sim.dir/simulator.cpp.o"
  "CMakeFiles/pp_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/pp_sim.dir/time.cpp.o"
  "CMakeFiles/pp_sim.dir/time.cpp.o.d"
  "libpp_sim.a"
  "libpp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpp_sim.a"
)

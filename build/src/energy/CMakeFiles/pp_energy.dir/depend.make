# Empty dependencies file for pp_energy.
# This may be replaced when dependencies are built.

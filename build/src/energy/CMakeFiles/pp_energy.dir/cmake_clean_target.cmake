file(REMOVE_RECURSE
  "libpp_energy.a"
)

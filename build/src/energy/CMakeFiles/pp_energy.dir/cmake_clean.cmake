file(REMOVE_RECURSE
  "CMakeFiles/pp_energy.dir/wnic.cpp.o"
  "CMakeFiles/pp_energy.dir/wnic.cpp.o.d"
  "libpp_energy.a"
  "libpp_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/pp_transport.dir/tcp.cpp.o"
  "CMakeFiles/pp_transport.dir/tcp.cpp.o.d"
  "CMakeFiles/pp_transport.dir/udp.cpp.o"
  "CMakeFiles/pp_transport.dir/udp.cpp.o.d"
  "libpp_transport.a"
  "libpp_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pp_transport.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpp_transport.a"
)

file(REMOVE_RECURSE
  "libpp_client.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/bsd_client.cpp" "src/client/CMakeFiles/pp_client.dir/bsd_client.cpp.o" "gcc" "src/client/CMakeFiles/pp_client.dir/bsd_client.cpp.o.d"
  "/root/repo/src/client/energy_client.cpp" "src/client/CMakeFiles/pp_client.dir/energy_client.cpp.o" "gcc" "src/client/CMakeFiles/pp_client.dir/energy_client.cpp.o.d"
  "/root/repo/src/client/power_daemon.cpp" "src/client/CMakeFiles/pp_client.dir/power_daemon.cpp.o" "gcc" "src/client/CMakeFiles/pp_client.dir/power_daemon.cpp.o.d"
  "/root/repo/src/client/psm_client.cpp" "src/client/CMakeFiles/pp_client.dir/psm_client.cpp.o" "gcc" "src/client/CMakeFiles/pp_client.dir/psm_client.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/pp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/pp_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/pp_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/pp_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

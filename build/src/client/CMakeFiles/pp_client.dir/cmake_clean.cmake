file(REMOVE_RECURSE
  "CMakeFiles/pp_client.dir/bsd_client.cpp.o"
  "CMakeFiles/pp_client.dir/bsd_client.cpp.o.d"
  "CMakeFiles/pp_client.dir/energy_client.cpp.o"
  "CMakeFiles/pp_client.dir/energy_client.cpp.o.d"
  "CMakeFiles/pp_client.dir/power_daemon.cpp.o"
  "CMakeFiles/pp_client.dir/power_daemon.cpp.o.d"
  "CMakeFiles/pp_client.dir/psm_client.cpp.o"
  "CMakeFiles/pp_client.dir/psm_client.cpp.o.d"
  "libpp_client.a"
  "libpp_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pp_client.
# This may be replaced when dependencies are built.

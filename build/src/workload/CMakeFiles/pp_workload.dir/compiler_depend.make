# Empty compiler generated dependencies file for pp_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pp_workload.dir/ftp.cpp.o"
  "CMakeFiles/pp_workload.dir/ftp.cpp.o.d"
  "CMakeFiles/pp_workload.dir/video.cpp.o"
  "CMakeFiles/pp_workload.dir/video.cpp.o.d"
  "CMakeFiles/pp_workload.dir/web.cpp.o"
  "CMakeFiles/pp_workload.dir/web.cpp.o.d"
  "libpp_workload.a"
  "libpp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

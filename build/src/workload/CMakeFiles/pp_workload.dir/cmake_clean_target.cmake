file(REMOVE_RECURSE
  "libpp_workload.a"
)

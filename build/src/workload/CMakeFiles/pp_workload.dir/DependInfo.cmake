
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/ftp.cpp" "src/workload/CMakeFiles/pp_workload.dir/ftp.cpp.o" "gcc" "src/workload/CMakeFiles/pp_workload.dir/ftp.cpp.o.d"
  "/root/repo/src/workload/video.cpp" "src/workload/CMakeFiles/pp_workload.dir/video.cpp.o" "gcc" "src/workload/CMakeFiles/pp_workload.dir/video.cpp.o.d"
  "/root/repo/src/workload/web.cpp" "src/workload/CMakeFiles/pp_workload.dir/web.cpp.o" "gcc" "src/workload/CMakeFiles/pp_workload.dir/web.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/pp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/pp_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

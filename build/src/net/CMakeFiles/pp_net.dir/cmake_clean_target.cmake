file(REMOVE_RECURSE
  "libpp_net.a"
)

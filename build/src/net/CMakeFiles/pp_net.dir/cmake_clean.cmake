file(REMOVE_RECURSE
  "CMakeFiles/pp_net.dir/access_point.cpp.o"
  "CMakeFiles/pp_net.dir/access_point.cpp.o.d"
  "CMakeFiles/pp_net.dir/addr.cpp.o"
  "CMakeFiles/pp_net.dir/addr.cpp.o.d"
  "CMakeFiles/pp_net.dir/link.cpp.o"
  "CMakeFiles/pp_net.dir/link.cpp.o.d"
  "CMakeFiles/pp_net.dir/node.cpp.o"
  "CMakeFiles/pp_net.dir/node.cpp.o.d"
  "CMakeFiles/pp_net.dir/packet.cpp.o"
  "CMakeFiles/pp_net.dir/packet.cpp.o.d"
  "CMakeFiles/pp_net.dir/wireless.cpp.o"
  "CMakeFiles/pp_net.dir/wireless.cpp.o.d"
  "libpp_net.a"
  "libpp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for pp_net.
# This may be replaced when dependencies are built.

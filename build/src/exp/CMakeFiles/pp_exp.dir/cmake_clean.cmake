file(REMOVE_RECURSE
  "CMakeFiles/pp_exp.dir/scenario.cpp.o"
  "CMakeFiles/pp_exp.dir/scenario.cpp.o.d"
  "CMakeFiles/pp_exp.dir/testbed.cpp.o"
  "CMakeFiles/pp_exp.dir/testbed.cpp.o.d"
  "libpp_exp.a"
  "libpp_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pp_exp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpp_exp.a"
)

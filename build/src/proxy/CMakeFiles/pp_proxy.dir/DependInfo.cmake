
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proxy/bandwidth.cpp" "src/proxy/CMakeFiles/pp_proxy.dir/bandwidth.cpp.o" "gcc" "src/proxy/CMakeFiles/pp_proxy.dir/bandwidth.cpp.o.d"
  "/root/repo/src/proxy/marker.cpp" "src/proxy/CMakeFiles/pp_proxy.dir/marker.cpp.o" "gcc" "src/proxy/CMakeFiles/pp_proxy.dir/marker.cpp.o.d"
  "/root/repo/src/proxy/schedule.cpp" "src/proxy/CMakeFiles/pp_proxy.dir/schedule.cpp.o" "gcc" "src/proxy/CMakeFiles/pp_proxy.dir/schedule.cpp.o.d"
  "/root/repo/src/proxy/scheduler.cpp" "src/proxy/CMakeFiles/pp_proxy.dir/scheduler.cpp.o" "gcc" "src/proxy/CMakeFiles/pp_proxy.dir/scheduler.cpp.o.d"
  "/root/repo/src/proxy/transparent_proxy.cpp" "src/proxy/CMakeFiles/pp_proxy.dir/transparent_proxy.cpp.o" "gcc" "src/proxy/CMakeFiles/pp_proxy.dir/transparent_proxy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/pp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/pp_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for pp_proxy.
# This may be replaced when dependencies are built.

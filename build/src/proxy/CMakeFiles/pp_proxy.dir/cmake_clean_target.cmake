file(REMOVE_RECURSE
  "libpp_proxy.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pp_proxy.dir/bandwidth.cpp.o"
  "CMakeFiles/pp_proxy.dir/bandwidth.cpp.o.d"
  "CMakeFiles/pp_proxy.dir/marker.cpp.o"
  "CMakeFiles/pp_proxy.dir/marker.cpp.o.d"
  "CMakeFiles/pp_proxy.dir/schedule.cpp.o"
  "CMakeFiles/pp_proxy.dir/schedule.cpp.o.d"
  "CMakeFiles/pp_proxy.dir/scheduler.cpp.o"
  "CMakeFiles/pp_proxy.dir/scheduler.cpp.o.d"
  "CMakeFiles/pp_proxy.dir/transparent_proxy.cpp.o"
  "CMakeFiles/pp_proxy.dir/transparent_proxy.cpp.o.d"
  "libpp_proxy.a"
  "libpp_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig5_mixed.dir/fig5_mixed.cpp.o"
  "CMakeFiles/fig5_mixed.dir/fig5_mixed.cpp.o.d"
  "fig5_mixed"
  "fig5_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

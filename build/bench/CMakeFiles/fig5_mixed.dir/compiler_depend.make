# Empty compiler generated dependencies file for fig5_mixed.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for packet_loss.
# This may be replaced when dependencies are built.

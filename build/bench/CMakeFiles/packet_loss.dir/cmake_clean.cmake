file(REMOVE_RECURSE
  "CMakeFiles/packet_loss.dir/packet_loss.cpp.o"
  "CMakeFiles/packet_loss.dir/packet_loss.cpp.o.d"
  "packet_loss"
  "packet_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig4_udp_energy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/static_vs_dynamic.dir/static_vs_dynamic.cpp.o"
  "CMakeFiles/static_vs_dynamic.dir/static_vs_dynamic.cpp.o.d"
  "static_vs_dynamic"
  "static_vs_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_vs_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

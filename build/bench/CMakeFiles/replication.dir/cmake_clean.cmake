file(REMOVE_RECURSE
  "CMakeFiles/replication.dir/replication.cpp.o"
  "CMakeFiles/replication.dir/replication.cpp.o.d"
  "replication"
  "replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for micro_sendcost.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/micro_sendcost.dir/micro_sendcost.cpp.o"
  "CMakeFiles/micro_sendcost.dir/micro_sendcost.cpp.o.d"
  "micro_sendcost"
  "micro_sendcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sendcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

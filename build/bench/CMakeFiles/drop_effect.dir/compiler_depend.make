# Empty compiler generated dependencies file for drop_effect.
# This may be replaced when dependencies are built.

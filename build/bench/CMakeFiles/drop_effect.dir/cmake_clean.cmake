file(REMOVE_RECURSE
  "CMakeFiles/drop_effect.dir/drop_effect.cpp.o"
  "CMakeFiles/drop_effect.dir/drop_effect.cpp.o.d"
  "drop_effect"
  "drop_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drop_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig7_static_slots.dir/fig7_static_slots.cpp.o"
  "CMakeFiles/fig7_static_slots.dir/fig7_static_slots.cpp.o.d"
  "fig7_static_slots"
  "fig7_static_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_static_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig7_static_slots.
# This may be replaced when dependencies are built.

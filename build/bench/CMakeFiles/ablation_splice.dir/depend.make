# Empty dependencies file for ablation_splice.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_splice.dir/ablation_splice.cpp.o"
  "CMakeFiles/ablation_splice.dir/ablation_splice.cpp.o.d"
  "ablation_splice"
  "ablation_splice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_splice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/psm_baseline.dir/psm_baseline.cpp.o"
  "CMakeFiles/psm_baseline.dir/psm_baseline.cpp.o.d"
  "psm_baseline"
  "psm_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psm_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

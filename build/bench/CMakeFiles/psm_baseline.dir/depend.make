# Empty dependencies file for psm_baseline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_delaycomp.dir/ablation_delaycomp.cpp.o"
  "CMakeFiles/ablation_delaycomp.dir/ablation_delaycomp.cpp.o.d"
  "ablation_delaycomp"
  "ablation_delaycomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delaycomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

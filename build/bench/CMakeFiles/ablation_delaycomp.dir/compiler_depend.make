# Empty compiler generated dependencies file for ablation_delaycomp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tcp_energy.dir/tcp_energy.cpp.o"
  "CMakeFiles/tcp_energy.dir/tcp_energy.cpp.o.d"
  "tcp_energy"
  "tcp_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

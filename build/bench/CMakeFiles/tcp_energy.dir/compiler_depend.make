# Empty compiler generated dependencies file for tcp_energy.
# This may be replaced when dependencies are built.

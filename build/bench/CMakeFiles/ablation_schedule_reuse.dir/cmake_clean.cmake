file(REMOVE_RECURSE
  "CMakeFiles/ablation_schedule_reuse.dir/ablation_schedule_reuse.cpp.o"
  "CMakeFiles/ablation_schedule_reuse.dir/ablation_schedule_reuse.cpp.o.d"
  "ablation_schedule_reuse"
  "ablation_schedule_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_schedule_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

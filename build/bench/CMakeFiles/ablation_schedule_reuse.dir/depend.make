# Empty dependencies file for ablation_schedule_reuse.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_sendcost.
# This may be replaced when dependencies are built.

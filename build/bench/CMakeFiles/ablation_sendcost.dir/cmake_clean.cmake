file(REMOVE_RECURSE
  "CMakeFiles/ablation_sendcost.dir/ablation_sendcost.cpp.o"
  "CMakeFiles/ablation_sendcost.dir/ablation_sendcost.cpp.o.d"
  "ablation_sendcost"
  "ablation_sendcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sendcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bsd_baseline.dir/bsd_baseline.cpp.o"
  "CMakeFiles/bsd_baseline.dir/bsd_baseline.cpp.o.d"
  "bsd_baseline"
  "bsd_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsd_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bsd_baseline.
# This may be replaced when dependencies are built.

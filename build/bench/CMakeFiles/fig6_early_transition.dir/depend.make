# Empty dependencies file for fig6_early_transition.
# This may be replaced when dependencies are built.

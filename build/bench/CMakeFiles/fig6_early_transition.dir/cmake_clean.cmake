file(REMOVE_RECURSE
  "CMakeFiles/fig6_early_transition.dir/fig6_early_transition.cpp.o"
  "CMakeFiles/fig6_early_transition.dir/fig6_early_transition.cpp.o.d"
  "fig6_early_transition"
  "fig6_early_transition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_early_transition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for optimal_comparison.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/optimal_comparison.dir/optimal_comparison.cpp.o"
  "CMakeFiles/optimal_comparison.dir/optimal_comparison.cpp.o.d"
  "optimal_comparison"
  "optimal_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/udp_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/bandwidth_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/marker_test[1]_include.cmake")
include("/root/repo/build/tests/daemon_test[1]_include.cmake")
include("/root/repo/build/tests/proxy_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/psm_test[1]_include.cmake")
include("/root/repo/build/tests/energy_client_test[1]_include.cmake")
include("/root/repo/build/tests/replicate_test[1]_include.cmake")
include("/root/repo/build/tests/bsd_test[1]_include.cmake")

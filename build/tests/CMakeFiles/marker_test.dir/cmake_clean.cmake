file(REMOVE_RECURSE
  "CMakeFiles/marker_test.dir/marker_test.cpp.o"
  "CMakeFiles/marker_test.dir/marker_test.cpp.o.d"
  "marker_test"
  "marker_test.pdb"
  "marker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

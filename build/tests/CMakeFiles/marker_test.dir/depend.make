# Empty dependencies file for marker_test.
# This may be replaced when dependencies are built.

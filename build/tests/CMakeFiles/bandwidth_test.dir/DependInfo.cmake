
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bandwidth_test.cpp" "tests/CMakeFiles/bandwidth_test.dir/bandwidth_test.cpp.o" "gcc" "tests/CMakeFiles/bandwidth_test.dir/bandwidth_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/pp_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/pp_client.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/pp_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/pp_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/pp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for energy_client_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/energy_client_test.dir/energy_client_test.cpp.o"
  "CMakeFiles/energy_client_test.dir/energy_client_test.cpp.o.d"
  "energy_client_test"
  "energy_client_test.pdb"
  "energy_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

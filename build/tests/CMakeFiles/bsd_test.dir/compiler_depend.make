# Empty compiler generated dependencies file for bsd_test.
# This may be replaced when dependencies are built.
